// Package isosurf extracts isosurfaces from scalar fields on
// curvilinear grids by marching tetrahedra. The paper rules
// isosurfaces out of the interactive toolset — "interactive
// isosurfaces, which require computationally intensive algorithms such
// as marching cubes, can not [be used]" (§1.2) — so the windtunnel
// offers this as an offline tool, and the benchmark harness uses it to
// quantify exactly how far outside the 1/8-second budget it falls.
package isosurf

import (
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// Triangle is one isosurface facet in physical coordinates.
type Triangle [3]vmath.Vec3

// tets lists the six tetrahedra that tile a hexahedral cell, as
// indices into the cell's eight corners (bit 0 = +i, bit 1 = +j,
// bit 2 = +k).
var tets = [6][4]int{
	{0, 5, 1, 3},
	{0, 5, 3, 7},
	{0, 5, 7, 4},
	{0, 3, 2, 7},
	{0, 2, 6, 7},
	{0, 6, 4, 7},
}

// cornerOffset maps a corner index to (di, dj, dk).
func cornerOffset(c int) (int, int, int) {
	return c & 1, (c >> 1) & 1, (c >> 2) & 1
}

// Extract returns the triangles of the iso-valued surface of the
// node-indexed scalar array on grid g. The scalar must have one value
// per grid node.
func Extract(g *grid.Grid, scalar []float32, iso float32) ([]Triangle, error) {
	return ExtractStride(g, scalar, iso, 1)
}

// ExtractStride marches coarsened cells: each cell spans stride nodes
// per axis (clamped at the far boundary), so stride 2 visits ~1/8 the
// cells of stride 1. This is the fidelity axis the frame-budget
// governor sheds shared tools along — a coarser surface, never a
// missing one.
//
// Triangle emission order is pinned: cells in k-major/j/i order,
// tetrahedra in table order within a cell. Two servers extracting the
// same (scalar, iso, stride) emit identical triangle streams, which is
// what lets tool geometry bytes be compared across servers and shipped
// through relays verbatim.
func ExtractStride(g *grid.Grid, scalar []float32, iso float32, stride int) ([]Triangle, error) {
	if err := checkExtract(g, scalar, stride); err != nil {
		return nil, err
	}
	return extractSlab(nil, g, scalar, iso, stride, 0, g.NK-1), nil
}

// ExtractParallel is ExtractStride with the k-slabs marched by worker
// goroutines. Workers claim slabs from a shared counter, so which
// goroutine marches which slab is scheduler-dependent — the merge
// therefore concatenates per-slab outputs in ascending slab order,
// pinning the emitted stream to exactly the serial order. (The naive
// merge — append as workers finish — emits triangles in completion
// order and two runs of the same server diverge; the cross-server
// determinism tests in internal/isosurf and internal/server pin the
// fix.)
func ExtractParallel(g *grid.Grid, scalar []float32, iso float32, stride, workers int) ([]Triangle, error) {
	if err := checkExtract(g, scalar, stride); err != nil {
		return nil, err
	}
	// Slab boundaries: contiguous runs of strided k values.
	var starts []int
	for k := 0; k < g.NK-1; k += stride {
		starts = append(starts, k)
	}
	if workers < 1 {
		workers = 1
	}
	slabK := len(starts)/workers + 1
	var slabs [][2]int
	for s := 0; s < len(starts); s += slabK {
		end := g.NK - 1
		if s+slabK < len(starts) {
			end = starts[s+slabK]
		}
		slabs = append(slabs, [2]int{starts[s], end})
	}
	parts := make([][]Triangle, len(slabs))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers && w < len(slabs); w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				s := int(next.Add(1)) - 1
				if s >= len(slabs) {
					return
				}
				parts[s] = extractSlab(nil, g, scalar, iso, stride, slabs[s][0], slabs[s][1])
			}
		}()
	}
	wg.Wait()
	var out []Triangle
	for _, p := range parts {
		out = append(out, p...)
	}
	return out, nil
}

func checkExtract(g *grid.Grid, scalar []float32, stride int) error {
	if len(scalar) != g.NumNodes() {
		return fmt.Errorf("isosurf: scalar has %d values for %d nodes", len(scalar), g.NumNodes())
	}
	if stride < 1 {
		return fmt.Errorf("isosurf: stride %d < 1", stride)
	}
	return nil
}

// extractSlab marches the strided cells whose low-k corner lies in
// [k0, k1), appending to out in pinned k/j/i order.
func extractSlab(out []Triangle, g *grid.Grid, scalar []float32, iso float32, stride, k0, k1 int) []Triangle {
	var vals [8]float32
	var pos [8]vmath.Vec3
	clamp := func(n, limit int) int {
		if n > limit {
			return limit
		}
		return n
	}
	for k := k0; k < k1 && k < g.NK-1; k += stride {
		kHi := clamp(k+stride, g.NK-1)
		for j := 0; j < g.NJ-1; j += stride {
			jHi := clamp(j+stride, g.NJ-1)
			for i := 0; i < g.NI-1; i += stride {
				iHi := clamp(i+stride, g.NI-1)
				// Gather the cell's corners once.
				inside := 0
				for c := 0; c < 8; c++ {
					di, dj, dk := cornerOffset(c)
					ci, cj, ck := i, j, k
					if di != 0 {
						ci = iHi
					}
					if dj != 0 {
						cj = jHi
					}
					if dk != 0 {
						ck = kHi
					}
					idx := g.Index(ci, cj, ck)
					vals[c] = scalar[idx]
					pos[c] = vmath.Vec3{X: g.X[idx], Y: g.Y[idx], Z: g.Z[idx]}
					if vals[c] >= iso {
						inside++
					}
				}
				if inside == 0 || inside == 8 {
					continue // cell entirely on one side
				}
				for _, tet := range tets {
					out = marchTet(out, &vals, &pos, tet, iso)
				}
			}
		}
	}
	return out
}

// marchTet emits 0-2 triangles for one tetrahedron.
func marchTet(out []Triangle, vals *[8]float32, pos *[8]vmath.Vec3, tet [4]int, iso float32) []Triangle {
	var mask int
	for n, c := range tet {
		if vals[c] >= iso {
			mask |= 1 << n
		}
	}
	if mask == 0 || mask == 0xF {
		return out
	}
	// Edge interpolation helper between tet-local corners a, b.
	edge := func(a, b int) vmath.Vec3 {
		ca, cb := tet[a], tet[b]
		va, vb := vals[ca], vals[cb]
		t := float32(0.5)
		if va != vb {
			t = (iso - va) / (vb - va)
		}
		return pos[ca].Lerp(pos[cb], t)
	}
	// The 14 non-trivial cases reduce to 8 by symmetry: one corner
	// isolated (4 cases + complements) -> 1 triangle; two-and-two
	// (3 cases + complements) -> 2 triangles.
	switch mask {
	case 0x1, 0xE: // corner 0 isolated
		out = append(out, Triangle{edge(0, 1), edge(0, 2), edge(0, 3)})
	case 0x2, 0xD: // corner 1
		out = append(out, Triangle{edge(1, 0), edge(1, 3), edge(1, 2)})
	case 0x4, 0xB: // corner 2
		out = append(out, Triangle{edge(2, 0), edge(2, 1), edge(2, 3)})
	case 0x8, 0x7: // corner 3
		out = append(out, Triangle{edge(3, 0), edge(3, 2), edge(3, 1)})
	case 0x3, 0xC: // corners {0,1} vs {2,3}
		a, b, c, d := edge(0, 2), edge(0, 3), edge(1, 3), edge(1, 2)
		out = append(out, Triangle{a, b, c}, Triangle{a, c, d})
	case 0x5, 0xA: // corners {0,2} vs {1,3}
		a, b, c, d := edge(0, 1), edge(0, 3), edge(2, 3), edge(2, 1)
		out = append(out, Triangle{a, b, c}, Triangle{a, c, d})
	case 0x6, 0x9: // corners {1,2} vs {0,3}
		a, b, c, d := edge(1, 0), edge(1, 3), edge(2, 3), edge(2, 0)
		out = append(out, Triangle{a, b, c}, Triangle{a, c, d})
	}
	return out
}

// SpeedField returns the node-indexed velocity magnitude of a field —
// the scalar whose isosurfaces bound recirculation and jet regions.
func SpeedField(f *field.Field) []float32 {
	out := make([]float32, f.NumNodes())
	for i := range out {
		v := vmath.Vec3{X: f.U[i], Y: f.V[i], Z: f.W[i]}
		out[i] = v.Len()
	}
	return out
}

// Area returns the total surface area of the triangle set, a cheap
// scalar for validating extractions against analytic surfaces.
func Area(tris []Triangle) float64 {
	var sum float64
	for _, t := range tris {
		e1 := t[1].Sub(t[0])
		e2 := t[2].Sub(t[0])
		sum += 0.5 * float64(e1.Cross(e2).Len())
	}
	return sum
}
