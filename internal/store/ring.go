// The live timestep ring: the in-situ mode's data substrate. Where the
// paper's windtunnel replays precomputed timesteps from mass storage,
// the in-situ configuration couples the Navier-Stokes solver directly
// to the visualization loop (§5's own bottleneck analysis points here):
// the solver seals finished timesteps into a bounded ring — a live head
// plus a history window for the tools that reference more than the
// current step — and the server serves frames from the newest sealed
// step.
//
// The ring recycles evicted steps' field buffers into later steps, so
// eviction is a write hazard: a step an in-flight tracer is still
// sampling must never be reclaimed. Pins are the guard — the tail never
// advances past the lowest pinned step, so a pinned step (and every
// step after it, which is what a forward-integrating tracer can reach)
// stays resident until the pin drops. Eviction deferred by a pin is
// counted, not forced.
//
// Layering rule: a Ring must NOT be wrapped in the shared timestep
// Cache, the Window, or the Prefetcher. All three hold bare *Field
// pointers across rounds, which the ring's buffer recycling would
// silently overwrite; the ring is already memory-resident, so the
// wrappers have nothing to add and everything to corrupt. The server
// enforces this when it detects a live store.
package store

import (
	"fmt"
	"sync"

	"repro/internal/field"
	"repro/internal/grid"
)

// RingStats counts the ring's producer/consumer traffic.
type RingStats struct {
	// Produced is the number of steps sealed so far (Head()+1).
	Produced int64
	// Recycled counts sealed steps that reused an evicted buffer
	// instead of allocating.
	Recycled int64
	// Deferred counts evictions postponed because the step (or one
	// before it) was pinned by an in-flight computation.
	Deferred int64
	// Clamped counts Clamp calls that had to move the requested step
	// back inside the resident window — the consumer asked for history
	// the ring has already recycled ("ring starvation" pressure).
	Clamped int64
}

// ringSlot is one resident sealed step.
type ringSlot struct {
	f    *field.Field
	pins int
}

// Ring is a Store over a live, bounded window of solver-produced
// timesteps: [Tail(), Head()] are resident, steps before Tail() have
// been recycled, steps after Head() do not exist yet (but a producer
// callback can be attached to create them on demand). NumSteps()
// reports the fixed horizon the live session is configured for, so the
// playback machinery sees the same dataset length a replayed recording
// of the run would have.
type Ring struct {
	g       *grid.Grid
	dt      float32
	window  int
	horizon int

	// produce seals steps through the given index; attached by the
	// live producer (datasets.Live). Called WITHOUT the ring lock —
	// it re-enters via Publish.
	produce func(upto int) error

	mu     sync.Mutex
	slots  map[int]*ringSlot
	head   int // newest sealed step, -1 before the first Publish
	tail   int // oldest resident step
	free   []*field.Field
	stats  RingStats
	closed bool
}

// NewRing builds a live ring over grid g with the given history window
// and total horizon (the NumSteps the live session reports).
func NewRing(g *grid.Grid, dt float32, window, horizon int) (*Ring, error) {
	if g == nil {
		return nil, fmt.Errorf("store: ring needs a grid")
	}
	if dt <= 0 {
		return nil, fmt.Errorf("store: ring dt %g <= 0", dt)
	}
	if window < 1 {
		return nil, fmt.Errorf("store: ring window %d < 1", window)
	}
	if horizon < 1 {
		return nil, fmt.Errorf("store: ring horizon %d < 1", horizon)
	}
	if window > horizon {
		window = horizon
	}
	return &Ring{
		g: g, dt: dt, window: window, horizon: horizon,
		slots: make(map[int]*ringSlot),
		head:  -1,
	}, nil
}

// SetProducer attaches the on-demand producer: LoadStep calls for steps
// beyond the head drive it (without the ring lock) until the step is
// sealed. The callback must seal steps strictly in order via Publish.
func (r *Ring) SetProducer(produce func(upto int) error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.produce = produce
}

// Grid implements Store.
func (r *Ring) Grid() *grid.Grid { return r.g }

// NumSteps implements Store: the configured horizon, not the sealed
// count, so TimeStatus on the wire matches an equal-length replay.
func (r *Ring) NumSteps() int { return r.horizon }

// DT implements Store.
func (r *Ring) DT() float32 { return r.dt }

// Close implements Store.
func (r *Ring) Close() error {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.closed = true
	r.slots = make(map[int]*ringSlot)
	r.free = nil
	return nil
}

// Head returns the newest sealed step, or -1 before the first Publish.
func (r *Ring) Head() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.head
}

// Tail returns the oldest resident step.
func (r *Ring) Tail() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.tail
}

// Stats returns a snapshot of the ring counters.
func (r *Ring) Stats() RingStats {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.stats
}

// Publish seals the next step with a copy of src and returns its index.
// Evicted buffers are recycled; eviction never passes a pinned step.
func (r *Ring) Publish(src *field.Field) (int, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return 0, fmt.Errorf("store: ring closed")
	}
	step := r.head + 1
	if step >= r.horizon {
		return 0, fmt.Errorf("store: ring horizon %d reached", r.horizon)
	}
	if src.NI != r.g.NI || src.NJ != r.g.NJ || src.NK != r.g.NK {
		return 0, fmt.Errorf("store: publish %dx%dx%d onto %dx%dx%d ring",
			src.NI, src.NJ, src.NK, r.g.NI, r.g.NJ, r.g.NK)
	}
	var f *field.Field
	if n := len(r.free); n > 0 {
		f = r.free[n-1]
		r.free = r.free[:n-1]
		r.stats.Recycled++
	} else {
		f = field.NewField(r.g.NI, r.g.NJ, r.g.NK, src.Coords)
	}
	f.Coords = src.Coords
	copy(f.U, src.U)
	copy(f.V, src.V)
	copy(f.W, src.W)
	r.slots[step] = &ringSlot{f: f}
	r.head = step
	r.stats.Produced++
	r.evictLocked()
	return step, nil
}

// evictLocked slides the tail up to head-window+1, stopping at the
// lowest pinned step: a pin holds its step AND everything after it
// resident (forward-integrating tracers only ever reach later steps).
func (r *Ring) evictLocked() {
	limit := r.head - r.window + 1
	if limit <= r.tail {
		return
	}
	barrier := limit
	for t, slot := range r.slots {
		if slot.pins > 0 && t < barrier {
			barrier = t
		}
	}
	if barrier < limit {
		r.stats.Deferred += int64(limit - barrier)
	}
	for t := r.tail; t < barrier; t++ {
		if slot, ok := r.slots[t]; ok {
			r.free = append(r.free, slot.f)
			delete(r.slots, t)
		}
	}
	if barrier > r.tail {
		r.tail = barrier
	}
}

// Pin marks step t referenced by an in-flight computation: until the
// matching Unpin, neither t nor any later step will be recycled. It
// reports whether t was resident (an evicted or unsealed step cannot
// be pinned).
func (r *Ring) Pin(t int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	slot, ok := r.slots[t]
	if !ok {
		return false
	}
	slot.pins++
	return true
}

// Unpin drops one pin from step t. Eviction deferred by the pin
// happens on the next Publish.
func (r *Ring) Unpin(t int) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if slot, ok := r.slots[t]; ok && slot.pins > 0 {
		slot.pins--
	}
}

// Clamp bounds a requested step to what the ring can serve: at least
// the tail (older history is recycled) and, when no producer is
// attached, at most the head. Out-of-window requests are counted as
// starvation pressure.
func (r *Ring) Clamp(step int) int {
	r.mu.Lock()
	defer r.mu.Unlock()
	clamped := step
	if clamped < r.tail {
		clamped = r.tail
	}
	if r.produce == nil {
		if max := r.head; max < 0 {
			max = 0
		} else if clamped > max {
			clamped = max
		}
	}
	if clamped >= r.horizon {
		clamped = r.horizon - 1
	}
	if clamped != step {
		r.stats.Clamped++
	}
	return clamped
}

// LoadStep implements Store. Steps in [Tail, Head] return immediately;
// steps beyond the head drive the attached producer until sealed
// (in-situ mode's on-demand computation); steps before the tail are
// gone — the caller is expected to Clamp first, and the error path
// degrades to stagnation in the samplers rather than crashing a frame.
func (r *Ring) LoadStep(t int) (*field.Field, error) {
	if t < 0 || t >= r.horizon {
		return nil, fmt.Errorf("store: timestep %d out of range [0, %d)", t, r.horizon)
	}
	for {
		r.mu.Lock()
		if r.closed {
			r.mu.Unlock()
			return nil, fmt.Errorf("store: ring closed")
		}
		if slot, ok := r.slots[t]; ok {
			f := slot.f
			r.mu.Unlock()
			return f, nil
		}
		if t <= r.head {
			head, tail := r.head, r.tail
			r.mu.Unlock()
			return nil, fmt.Errorf("store: live step %d recycled (window [%d, %d])", t, tail, head)
		}
		produce := r.produce
		r.mu.Unlock()
		if produce == nil {
			return nil, fmt.Errorf("store: live step %d not yet produced", t)
		}
		// Drive the solver forward without the ring lock (Publish
		// re-enters it); the producer serializes concurrent callers and
		// the loop re-checks residency after each attempt.
		if err := produce(t); err != nil {
			return nil, fmt.Errorf("store: produce step %d: %w", t, err)
		}
	}
}
