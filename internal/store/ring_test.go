package store

import (
	"strings"
	"sync"
	"testing"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// ringGrid builds the small grid every ring test shares.
func ringGrid(t testing.TB) *grid.Grid {
	t.Helper()
	g, err := grid.NewCartesian(8, 8, 4, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(7, 7, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// stepField builds a source field whose U is constant t, so resident
// steps are verifiable after recycling.
func stepField(g *grid.Grid, t int) *field.Field {
	f := field.NewField(g.NI, g.NJ, g.NK, field.GridCoords)
	for i := range f.U {
		f.U[i] = float32(t)
	}
	return f
}

func TestRingPublishAndWindow(t *testing.T) {
	g := ringGrid(t)
	r, err := NewRing(g, 0.1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	if r.NumSteps() != 10 || r.DT() != 0.1 || r.Grid() != g {
		t.Fatalf("metadata: steps=%d dt=%v", r.NumSteps(), r.DT())
	}
	if r.Head() != -1 {
		t.Fatalf("head before first publish = %d, want -1", r.Head())
	}
	for i := 0; i < 5; i++ {
		step, err := r.Publish(stepField(g, i))
		if err != nil {
			t.Fatal(err)
		}
		if step != i {
			t.Fatalf("publish %d sealed as step %d", i, step)
		}
	}
	// Window 3, head 4: steps 2..4 resident, 0..1 recycled.
	if r.Head() != 4 || r.Tail() != 2 {
		t.Fatalf("window = [%d, %d], want [2, 4]", r.Tail(), r.Head())
	}
	for i := 2; i <= 4; i++ {
		f, err := r.LoadStep(i)
		if err != nil {
			t.Fatalf("resident step %d: %v", i, err)
		}
		if f.U[0] != float32(i) {
			t.Fatalf("step %d payload U[0] = %v", i, f.U[0])
		}
	}
	if _, err := r.LoadStep(1); err == nil || !strings.Contains(err.Error(), "recycled") {
		t.Fatalf("recycled step load: %v, want recycled error", err)
	}
	if _, err := r.LoadStep(7); err == nil {
		t.Fatal("unproduced step load without a producer succeeded")
	}
	if _, err := r.LoadStep(-1); err == nil {
		t.Fatal("negative step accepted")
	}
	if _, err := r.LoadStep(10); err == nil {
		t.Fatal("step past the horizon accepted")
	}
	// Eviction happens inside Publish, so the first recycle shows up
	// one publish after the first eviction: by head 4, one buffer has
	// come back around.
	st := r.Stats()
	if st.Produced != 5 || st.Recycled != 1 {
		t.Fatalf("stats = %+v, want Produced 5 Recycled 1", st)
	}
}

func TestRingOnDemandProduction(t *testing.T) {
	g := ringGrid(t)
	r, err := NewRing(g, 0.1, 4, 20)
	if err != nil {
		t.Fatal(err)
	}
	produced := 0
	r.SetProducer(func(upto int) error {
		for r.Head() < upto {
			if _, err := r.Publish(stepField(g, r.Head()+1)); err != nil {
				return err
			}
			produced++
		}
		return nil
	})
	f, err := r.LoadStep(6)
	if err != nil {
		t.Fatal(err)
	}
	if f.U[0] != 6 || produced != 7 {
		t.Fatalf("U[0]=%v produced=%d, want 6 and 7", f.U[0], produced)
	}
	// Already-resident steps must not re-drive the producer.
	if _, err := r.LoadStep(5); err != nil {
		t.Fatal(err)
	}
	if produced != 7 {
		t.Fatalf("resident load produced %d extra steps", produced-7)
	}
}

func TestRingClamp(t *testing.T) {
	g := ringGrid(t)
	r, err := NewRing(g, 0.1, 3, 10)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		if _, err := r.Publish(stepField(g, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Window is [3, 5]. Below the tail clamps up; with no producer,
	// above the head clamps down; the horizon always bounds.
	if got := r.Clamp(1); got != 3 {
		t.Fatalf("Clamp(1) = %d, want 3", got)
	}
	if got := r.Clamp(8); got != 5 {
		t.Fatalf("Clamp(8) = %d, want 5", got)
	}
	if got := r.Clamp(4); got != 4 {
		t.Fatalf("Clamp(4) = %d, want 4", got)
	}
	if got := r.Stats().Clamped; got != 2 {
		t.Fatalf("Clamped = %d, want 2", got)
	}
	// With a producer attached, future steps are reachable — only the
	// horizon clamps from above.
	r.SetProducer(func(int) error { return nil })
	if got := r.Clamp(8); got != 8 {
		t.Fatalf("Clamp(8) with producer = %d, want 8", got)
	}
	if got := r.Clamp(99); got != 9 {
		t.Fatalf("Clamp(99) = %d, want horizon-1 = 9", got)
	}
}

// TestRingPinBlocksRecycle is the eviction-while-integrating
// regression test: a step pinned by an in-flight tracer must survive
// publishes that would otherwise evict it, its buffer must not be
// recycled into a new step, and dropping the pin must free it again.
func TestRingPinBlocksRecycle(t *testing.T) {
	g := ringGrid(t)
	r, err := NewRing(g, 0.1, 2, 32)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := r.Publish(stepField(g, i)); err != nil {
			t.Fatal(err)
		}
	}
	// Window 2, head 2: steps 1..2 resident. Pin 1 (the tracer's
	// current step), then produce far past the window.
	if !r.Pin(1) {
		t.Fatal("pinning a resident step failed")
	}
	if r.Pin(0) {
		t.Fatal("pinning an evicted step succeeded")
	}
	pinned, err := r.LoadStep(1)
	if err != nil {
		t.Fatal(err)
	}
	for i := 3; i < 10; i++ {
		if _, err := r.Publish(stepField(g, i)); err != nil {
			t.Fatal(err)
		}
	}
	// The pin held the tail: steps 1..9 all resident, nothing between
	// the pin and the head was reclaimed.
	if r.Tail() != 1 {
		t.Fatalf("tail = %d with step 1 pinned, want 1", r.Tail())
	}
	for i := 1; i < 10; i++ {
		f, err := r.LoadStep(i)
		if err != nil {
			t.Fatalf("step %d evicted despite pin barrier: %v", i, err)
		}
		if f.U[0] != float32(i) {
			t.Fatalf("step %d payload overwritten: U[0] = %v", i, f.U[0])
		}
	}
	// The pinned buffer itself is bit-intact.
	if pinned.U[0] != 1 {
		t.Fatalf("pinned step overwritten: U[0] = %v", pinned.U[0])
	}
	if d := r.Stats().Deferred; d == 0 {
		t.Fatal("deferred-eviction counter never moved")
	}

	// Unpin: the next publish slides the tail and recycles — and the
	// reclaimed buffer is reused for a later step (pointer identity
	// proves the recycle path ran).
	r.Unpin(1)
	if _, err := r.Publish(stepField(g, 10)); err != nil {
		t.Fatal(err)
	}
	if r.Tail() != 9 {
		t.Fatalf("tail after unpin+publish = %d, want 9", r.Tail())
	}
	before := r.Stats().Recycled
	step, err := r.Publish(stepField(g, 11))
	if err != nil {
		t.Fatal(err)
	}
	f, err := r.LoadStep(step)
	if err != nil {
		t.Fatal(err)
	}
	if r.Stats().Recycled <= before {
		t.Fatal("publish after unpin did not recycle a freed buffer")
	}
	if f == pinned && f.U[0] != 11 {
		t.Fatalf("recycled buffer holds stale data: U[0] = %v", f.U[0])
	}
}

// TestRingPinUnderConcurrentProduction hammers the pin/publish race
// directly: a producer goroutine publishes while a consumer pins,
// reads, and verifies its step. Run with -race this is the
// eviction-while-integrating audit in miniature.
func TestRingPinUnderConcurrentProduction(t *testing.T) {
	g := ringGrid(t)
	r, err := NewRing(g, 0.1, 2, 512)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Publish(stepField(g, 0)); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 1; i < 512; i++ {
			if _, err := r.Publish(stepField(g, i)); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	reads := 0
	for i := 0; i < 2000; i++ {
		head := r.Head()
		if head < 0 {
			continue
		}
		if !r.Pin(head) {
			continue // already evicted between Head and Pin; try again
		}
		f, err := r.LoadStep(head)
		if err == nil {
			if f.U[0] != float32(head) {
				t.Fatalf("pinned step %d overwritten mid-read: U[0] = %v", head, f.U[0])
			}
			reads++
		}
		r.Unpin(head)
	}
	wg.Wait()
	if reads == 0 {
		t.Fatal("consumer never completed a pinned read")
	}
}

func TestRingValidation(t *testing.T) {
	g := ringGrid(t)
	if _, err := NewRing(nil, 0.1, 2, 4); err == nil {
		t.Error("nil grid accepted")
	}
	if _, err := NewRing(g, 0, 2, 4); err == nil {
		t.Error("zero dt accepted")
	}
	if _, err := NewRing(g, 0.1, 0, 4); err == nil {
		t.Error("zero window accepted")
	}
	if _, err := NewRing(g, 0.1, 2, 0); err == nil {
		t.Error("zero horizon accepted")
	}
	r, err := NewRing(g, 0.1, 99, 4)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		if _, err := r.Publish(stepField(g, i)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := r.Publish(stepField(g, 4)); err == nil {
		t.Error("publish past the horizon accepted")
	}
	wrong := field.NewField(2, 2, 2, field.GridCoords)
	r2, _ := NewRing(g, 0.1, 2, 4)
	if _, err := r2.Publish(wrong); err == nil {
		t.Error("mismatched field dims accepted")
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := r.LoadStep(1); err == nil {
		t.Error("load after close succeeded")
	}
}
