package store

import (
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/field"
)

// gatedStore wraps a Store, counting underlying loads and optionally
// blocking them until released, so tests can observe coalescing.
type gatedStore struct {
	Store
	loads atomic.Int64
	gate  chan struct{} // nil = never block
	enter chan int      // nil = don't announce
	fail  map[int]error
}

func (g *gatedStore) LoadStep(t int) (*field.Field, error) {
	g.loads.Add(1)
	if g.enter != nil {
		g.enter <- t
	}
	if g.gate != nil {
		<-g.gate
	}
	if err := g.fail[t]; err != nil {
		return nil, err
	}
	return g.Store.LoadStep(t)
}

func TestCacheHitsAndLRUEviction(t *testing.T) {
	src := &gatedStore{Store: NewMemory(makeDataset(t, 5))}
	c, err := NewCache(src, CacheOptions{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	load := func(step int, want float32) {
		t.Helper()
		f, err := c.LoadStep(step)
		if err != nil {
			t.Fatal(err)
		}
		checkStep(t, f, want)
	}
	load(0, 0) // miss
	load(1, 1) // miss
	load(0, 0) // hit, 0 now most recent
	load(2, 2) // miss, evicts 1 (LRU)
	if c.Resident(1) {
		t.Error("step 1 survived eviction")
	}
	if !c.Resident(0) || !c.Resident(2) {
		t.Error("recently used steps evicted")
	}
	load(1, 1) // miss again
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 4 || s.Evictions != 2 {
		t.Fatalf("stats = %+v", s)
	}
	if s.ResidentSteps != 2 {
		t.Fatalf("resident = %d, want 2", s.ResidentSteps)
	}
	if got := src.loads.Load(); got != 4 {
		t.Fatalf("underlying loads = %d, want 4", got)
	}
	if want := 1.0 / 5.0; s.HitRate() != want {
		t.Fatalf("hit rate = %v, want %v", s.HitRate(), want)
	}
}

func TestCacheByteBudgetKeepsAtLeastOne(t *testing.T) {
	src := NewMemory(makeDataset(t, 3))
	stepBytes := mustLoad(t, src, 0).SizeBytes()
	// Budget below one step: the newest step must still stay resident.
	c, err := NewCache(src, CacheOptions{MaxBytes: stepBytes / 2})
	if err != nil {
		t.Fatal(err)
	}
	mustLoad(t, c, 0)
	mustLoad(t, c, 0)
	if s := c.Stats(); s.Hits != 1 || s.Misses != 1 || s.ResidentSteps != 1 {
		t.Fatalf("stats = %+v", s)
	}
	mustLoad(t, c, 1) // evicts 0: over byte budget
	if c.Resident(0) || !c.Resident(1) {
		t.Fatalf("resident after byte eviction: 0=%v 1=%v", c.Resident(0), c.Resident(1))
	}
	if s := c.Stats(); s.Evictions != 1 || s.ResidentBytes != stepBytes {
		t.Fatalf("stats = %+v", s)
	}
	// A budget of two steps holds exactly two.
	c2, err := NewCache(src, CacheOptions{MaxBytes: 2 * stepBytes})
	if err != nil {
		t.Fatal(err)
	}
	mustLoad(t, c2, 0)
	mustLoad(t, c2, 1)
	mustLoad(t, c2, 2)
	if s := c2.Stats(); s.ResidentSteps != 2 || s.Evictions != 1 {
		t.Fatalf("two-step budget stats = %+v", s)
	}
}

func mustLoad(t *testing.T, s Store, step int) *field.Field {
	t.Helper()
	f, err := s.LoadStep(step)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestCacheSingleFlight(t *testing.T) {
	const waiters = 7
	src := &gatedStore{
		Store: NewMemory(makeDataset(t, 3)),
		gate:  make(chan struct{}),
		enter: make(chan int, 1),
	}
	c, err := NewCache(src, CacheOptions{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	results := make([]*field.Field, waiters+1)
	launch := func(i int) {
		wg.Add(1)
		go func() {
			defer wg.Done()
			f, err := c.LoadStep(1)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = f
		}()
	}
	launch(0)
	<-src.enter // the leader is inside the underlying load
	for i := 1; i <= waiters; i++ {
		launch(i)
	}
	// Wait until every follower has joined the in-flight load, then
	// release the read.
	deadline := time.Now().Add(5 * time.Second)
	for c.Stats().Coalesced != waiters {
		if time.Now().After(deadline) {
			t.Fatalf("coalesced = %d, want %d", c.Stats().Coalesced, waiters)
		}
		time.Sleep(time.Millisecond)
	}
	close(src.gate)
	wg.Wait()
	if got := src.loads.Load(); got != 1 {
		t.Fatalf("underlying loads = %d, want 1 (single-flight)", got)
	}
	for i, f := range results {
		if f != results[0] {
			t.Fatalf("waiter %d got a different field pointer", i)
		}
	}
	s := c.Stats()
	if s.Misses != 1 || s.Coalesced != waiters {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheErrorNotCached(t *testing.T) {
	boom := errors.New("disk on fire")
	src := &gatedStore{
		Store: NewMemory(makeDataset(t, 3)),
		fail:  map[int]error{1: boom},
	}
	c, err := NewCache(src, CacheOptions{MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadStep(1); !errors.Is(err, boom) {
		t.Fatalf("err = %v", err)
	}
	if c.Resident(1) {
		t.Error("failed load became resident")
	}
	// The failure is not cached: a retry hits the source again, and
	// once the source recovers the step becomes resident.
	delete(src.fail, 1)
	mustLoad(t, c, 1)
	if !c.Resident(1) {
		t.Error("recovered load not resident")
	}
	if got := src.loads.Load(); got != 2 {
		t.Fatalf("underlying loads = %d, want 2", got)
	}
}

func TestCacheUnderPrefetcher(t *testing.T) {
	src := &gatedStore{Store: NewMemory(makeDataset(t, 4))}
	c, err := NewCache(src, CacheOptions{MaxSteps: 4})
	if err != nil {
		t.Fatal(err)
	}
	p := NewPrefetcher(c)
	p.Prefetch(2)
	// Drain the prefetch through the cache; the foreground load joins
	// or follows it, and either way the step is resident after.
	f, err := p.LoadStep(2)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, f, 2)
	if !c.Resident(2) {
		t.Error("prefetched step did not fill the shared cache")
	}
	// A later load of the same step — e.g. another session's playback
	// position — is a cache hit, not a second read.
	mustLoad(t, c, 2)
	if got := src.loads.Load(); got != 1 {
		t.Fatalf("underlying loads = %d, want 1", got)
	}
	if s := c.Stats(); s.Hits != 1 {
		t.Fatalf("stats = %+v", s)
	}
}

func TestCacheConcurrentMixedSteps(t *testing.T) {
	src := &gatedStore{Store: NewMemory(makeDataset(t, 6))}
	c, err := NewCache(src, CacheOptions{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	const goroutines = 8
	const iters = 200
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				step := (g + i) % 6
				f, err := c.LoadStep(step)
				if err != nil {
					t.Error(err)
					return
				}
				if f.U[0] != float32(step) {
					t.Errorf("step %d payload %v", step, f.U[0])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	s := c.Stats()
	if total := s.Hits + s.Misses + s.Coalesced; total != goroutines*iters {
		t.Fatalf("accounting: %d counted, %d calls (%+v)", total, goroutines*iters, s)
	}
	if s.ResidentSteps > 2 {
		t.Fatalf("resident %d exceeds budget", s.ResidentSteps)
	}
}

func TestCacheRejectsNegativeBudget(t *testing.T) {
	src := NewMemory(makeDataset(t, 2))
	if _, err := NewCache(src, CacheOptions{MaxSteps: -1}); err == nil {
		t.Error("negative MaxSteps accepted")
	}
	if _, err := NewCache(src, CacheOptions{MaxBytes: -1}); err == nil {
		t.Error("negative MaxBytes accepted")
	}
	c, err := NewCache(src, CacheOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.LoadStep(9); err == nil {
		t.Error("out-of-range step accepted")
	}
	if _, err := c.LoadStep(-1); err == nil {
		t.Error("negative step accepted")
	}
}

// TestCacheMetadataPassthrough pins that the cache is transparent for
// everything but LoadStep.
func TestCacheMetadataPassthrough(t *testing.T) {
	src := NewMemory(makeDataset(t, 5))
	c, err := NewCache(src, CacheOptions{MaxSteps: 2})
	if err != nil {
		t.Fatal(err)
	}
	if c.NumSteps() != 5 || c.DT() != src.DT() || c.Grid() != src.Grid() {
		t.Fatalf("metadata mismatch: steps=%d dt=%v", c.NumSteps(), c.DT())
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestCacheStatsString pins the one-line summary vwserver's stats
// ticker logs, so the flag-gated main stays a thin formatter call.
func TestCacheStatsString(t *testing.T) {
	s := CacheStats{
		Hits: 9, Misses: 2, Coalesced: 1, Evictions: 3,
		ResidentSteps: 4, ResidentBytes: 3 << 20,
	}
	got := s.String()
	want := "hits=9 misses=2 coalesced=1 evictions=3 resident=4 (3.0MB) hit=83%"
	if got != want {
		t.Errorf("String() = %q, want %q", got, want)
	}
	if zero := (CacheStats{}).String(); !strings.Contains(zero, "hit=0%") {
		t.Errorf("zero-traffic String() = %q", zero)
	}
}

// TestCacheFailedCoalescedLoadAccounting pins the byte-budget
// accounting on the error path: a failed load that several sessions
// coalesced onto must charge the budget nothing, leave no phantom
// resident entry, and release every waiter with the source's error —
// and a later retry must make the step resident with its bytes counted
// exactly once.
func TestCacheFailedCoalescedLoadAccounting(t *testing.T) {
	boom := errors.New("spindle fell off")
	src := &gatedStore{
		Store: NewMemory(makeDataset(t, 3)),
		gate:  make(chan struct{}),
		enter: make(chan int),
		fail:  map[int]error{1: boom},
	}
	c, err := NewCache(src, CacheOptions{MaxSteps: 2, MaxBytes: 64 << 20})
	if err != nil {
		t.Fatal(err)
	}

	const waiters = 4
	errs := make([]error, waiters)
	var wg sync.WaitGroup
	for i := 0; i < waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = c.LoadStep(1)
		}(i)
	}
	// One underlying read enters; wait for the other three to join the
	// flight before letting it fail.
	<-src.enter
	for deadline := time.Now().Add(5 * time.Second); c.Stats().Coalesced != waiters-1; {
		if time.Now().After(deadline) {
			t.Fatalf("waiters never coalesced: %+v", c.Stats())
		}
		time.Sleep(time.Millisecond)
	}
	close(src.gate)
	wg.Wait()

	for i, e := range errs {
		if !errors.Is(e, boom) {
			t.Fatalf("waiter %d error = %v, want %v", i, e, boom)
		}
	}
	st := c.Stats()
	if src.loads.Load() != 1 {
		t.Errorf("underlying loads = %d, want 1 (coalesced)", src.loads.Load())
	}
	if st.Misses != 1 || st.Coalesced != waiters-1 {
		t.Errorf("stats after failed flight: %+v", st)
	}
	// The accounting claim: nothing resident, nothing charged.
	if st.ResidentSteps != 0 || st.ResidentBytes != 0 {
		t.Errorf("failed load left residue: steps=%d bytes=%d", st.ResidentSteps, st.ResidentBytes)
	}
	if c.Resident(1) {
		t.Error("failed step marked resident")
	}

	// The flight died with its error: a retry issues a fresh read (no
	// stranded in-flight entry) and charges the budget exactly once.
	src.fail = nil
	src.enter = nil
	f, err := c.LoadStep(1)
	if err != nil {
		t.Fatalf("retry after failed flight: %v", err)
	}
	checkStep(t, f, 1)
	st = c.Stats()
	if src.loads.Load() != 2 {
		t.Errorf("retry loads = %d, want 2", src.loads.Load())
	}
	if st.ResidentSteps != 1 || st.ResidentBytes != f.SizeBytes() {
		t.Errorf("retry accounting: steps=%d bytes=%d, want 1 step of %d bytes",
			st.ResidentSteps, st.ResidentBytes, f.SizeBytes())
	}
}
