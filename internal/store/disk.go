package store

import (
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/field"
	"repro/internal/grid"
)

// Dataset directory layout:
//
//	<dir>/grid.vwt              grid file (field.WriteGrid)
//	<dir>/step_000000.vwt ...   one timestep file per step
//	<dir>/meta.vwt              dt and step count (tiny text file)

// stepFileName returns the timestep file name for step t.
func stepFileName(t int) string { return fmt.Sprintf("step_%06d.vwt", t) }

// WriteDataset writes an in-memory dataset to dir in the on-disk
// layout. dir is created if needed.
func WriteDataset(dir string, u *field.Unsteady) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("store: create dataset dir: %w", err)
	}
	gf, err := os.Create(filepath.Join(dir, "grid.vwt"))
	if err != nil {
		return fmt.Errorf("store: create grid file: %w", err)
	}
	if err := field.WriteGrid(gf, u.Grid); err != nil {
		gf.Close()
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	for t, step := range u.Steps {
		sf, err := os.Create(filepath.Join(dir, stepFileName(t)))
		if err != nil {
			return fmt.Errorf("store: create step file %d: %w", t, err)
		}
		if err := field.WriteField(sf, step); err != nil {
			sf.Close()
			return fmt.Errorf("store: write step %d: %w", t, err)
		}
		if err := sf.Close(); err != nil {
			return err
		}
	}
	meta := fmt.Sprintf("steps %d\ndt %g\n", len(u.Steps), u.DT)
	if err := os.WriteFile(filepath.Join(dir, "meta.vwt"), []byte(meta), 0o644); err != nil {
		return fmt.Errorf("store: write meta: %w", err)
	}
	return nil
}

// DiskOptions configures a Disk store.
type DiskOptions struct {
	// BandwidthBytesPerSec throttles reads to simulate a particular
	// disk subsystem (the paper's Convex measured 30-50 MB/s). Zero
	// means unthrottled.
	BandwidthBytesPerSec int64
}

// Disk is a Store reading timesteps from a dataset directory, with an
// optional bandwidth throttle and load statistics. It models §5.1's
// "data must reside on a mass storage device" regime.
type Disk struct {
	dir      string
	g        *grid.Grid
	numSteps int
	dt       float32
	opts     DiskOptions

	bytesRead atomic.Int64
	loads     atomic.Int64
	loadNanos atomic.Int64
}

// OpenDisk opens a dataset directory written by WriteDataset.
func OpenDisk(dir string, opts DiskOptions) (*Disk, error) {
	gf, err := os.Open(filepath.Join(dir, "grid.vwt"))
	if err != nil {
		return nil, fmt.Errorf("store: open grid: %w", err)
	}
	g, err := field.ReadGrid(gf)
	gf.Close()
	if err != nil {
		return nil, err
	}
	metaBytes, err := os.ReadFile(filepath.Join(dir, "meta.vwt"))
	if err != nil {
		return nil, fmt.Errorf("store: read meta: %w", err)
	}
	var numSteps int
	var dt float32
	if _, err := fmt.Sscanf(string(metaBytes), "steps %d\ndt %g", &numSteps, &dt); err != nil {
		return nil, fmt.Errorf("store: parse meta: %w", err)
	}
	if numSteps < 1 || dt <= 0 {
		return nil, fmt.Errorf("store: bad meta: steps=%d dt=%g", numSteps, dt)
	}
	return &Disk{dir: dir, g: g, numSteps: numSteps, dt: dt, opts: opts}, nil
}

// Grid implements Store.
func (d *Disk) Grid() *grid.Grid { return d.g }

// NumSteps implements Store.
func (d *Disk) NumSteps() int { return d.numSteps }

// DT implements Store.
func (d *Disk) DT() float32 { return d.dt }

// Close implements Store.
func (d *Disk) Close() error { return nil }

// LoadStep implements Store, reading the step file and applying the
// bandwidth throttle.
func (d *Disk) LoadStep(t int) (*field.Field, error) {
	if t < 0 || t >= d.numSteps {
		return nil, fmt.Errorf("store: timestep %d out of range [0, %d)", t, d.numSteps)
	}
	start := time.Now() //vw:allow wallclock -- simulated disk bandwidth throttles real time by design
	path := filepath.Join(d.dir, stepFileName(t))
	sf, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("store: open step %d: %w", t, err)
	}
	f, err := field.ReadField(sf)
	sf.Close()
	if err != nil {
		return nil, fmt.Errorf("store: read step %d: %w", t, err)
	}
	n := f.SizeBytes()
	if bw := d.opts.BandwidthBytesPerSec; bw > 0 {
		// Model a disk delivering bw bytes/sec: the load may not
		// complete before size/bw seconds have passed.
		budget := time.Duration(float64(n) / float64(bw) * float64(time.Second))
		if elapsed := time.Since(start); elapsed < budget { //vw:allow wallclock -- simulated disk bandwidth throttles real time by design
			time.Sleep(budget - elapsed) //vw:allow wallclock -- simulated disk bandwidth throttles real time by design
		}
	}
	d.bytesRead.Add(n)
	d.loads.Add(1)
	d.loadNanos.Add(int64(time.Since(start))) //vw:allow wallclock -- obs-only load timer
	return f, nil
}

// Stats reports cumulative load statistics.
func (d *Disk) Stats() (loads int64, bytesRead int64, totalTime time.Duration) {
	return d.loads.Load(), d.bytesRead.Load(), time.Duration(d.loadNanos.Load())
}

// Prefetcher overlaps timestep loading with computation, the paper's
// figure-8 architecture: "The timestep required for the next
// computation is loaded into a buffer" while the current one is used.
// It prefetches a single step ahead along a caller-provided stride
// (time can run backward in the windtunnel).
type Prefetcher struct {
	src Store

	mu      sync.Mutex
	pending map[int]chan prefetchResult

	hits, misses, issued atomic.Int64
}

type prefetchResult struct {
	f   *field.Field
	err error
}

// NewPrefetcher wraps src.
func NewPrefetcher(src Store) *Prefetcher {
	return &Prefetcher{src: src, pending: make(map[int]chan prefetchResult)}
}

// Grid implements Store.
func (p *Prefetcher) Grid() *grid.Grid { return p.src.Grid() }

// NumSteps implements Store.
func (p *Prefetcher) NumSteps() int { return p.src.NumSteps() }

// DT implements Store.
func (p *Prefetcher) DT() float32 { return p.src.DT() }

// Close implements Store.
func (p *Prefetcher) Close() error { return p.src.Close() }

// Prefetch starts loading timestep t in the background if it is in
// range and not already in flight.
func (p *Prefetcher) Prefetch(t int) {
	if t < 0 || t >= p.src.NumSteps() {
		return
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.pending[t]; ok {
		return
	}
	ch := make(chan prefetchResult, 1)
	p.pending[t] = ch
	p.issued.Add(1)
	go func() {
		f, err := p.src.LoadStep(t)
		ch <- prefetchResult{f, err}
	}()
}

// LoadStep implements Store: a previously prefetched step is awaited
// (usually already done — that is the overlap win); anything else
// loads synchronously.
func (p *Prefetcher) LoadStep(t int) (*field.Field, error) {
	p.mu.Lock()
	ch, ok := p.pending[t]
	if ok {
		delete(p.pending, t)
	}
	p.mu.Unlock()
	if ok {
		p.hits.Add(1)
		res := <-ch
		return res.f, res.err
	}
	p.misses.Add(1)
	return p.src.LoadStep(t)
}

// PrefetchStats counts prefetcher activity: Issued background loads
// started, Hits loads served from a completed or in-flight prefetch,
// Misses loads that fell through to a synchronous read.
type PrefetchStats struct {
	Hits, Misses, Issued int64
}

// Stats reports how many background loads were issued and how many
// foreground loads were served from prefetch vs synchronously.
func (p *Prefetcher) Stats() PrefetchStats {
	return PrefetchStats{
		Hits:   p.hits.Load(),
		Misses: p.misses.Load(),
		Issued: p.issued.Load(),
	}
}
