// Package store manages access to unsteady flowfield timesteps,
// reproducing §5.1's data-management strategies: datasets fully
// resident in (the remote host's large) memory, datasets streamed from
// disk with a bandwidth budget, double-buffered prefetching so disk
// I/O overlaps computation (figure 8), and the in-memory window of
// future timesteps that particle paths require.
//
//vw:deterministic
package store

import (
	"fmt"
	"sync"

	"repro/internal/field"
	"repro/internal/grid"
)

// Store supplies the grid and timesteps of one dataset. LoadStep may
// block on I/O; implementations must be safe for concurrent use.
type Store interface {
	// Grid returns the dataset's grid.
	Grid() *grid.Grid
	// NumSteps returns the number of timesteps.
	NumSteps() int
	// DT returns the flow-time interval between timesteps.
	DT() float32
	// LoadStep returns timestep t. Implementations may return a shared
	// pointer; callers must not modify the field.
	LoadStep(t int) (*field.Field, error)
	// Close releases resources.
	Close() error
}

// Memory is a Store over a fully resident dataset — the stand-alone
// windtunnel's only mode, and the distributed windtunnel's fast path
// when the dataset fits in the remote host's gigabyte of memory.
type Memory struct {
	u *field.Unsteady
}

// NewMemory wraps an in-memory dataset.
func NewMemory(u *field.Unsteady) *Memory { return &Memory{u: u} }

// Grid implements Store.
func (m *Memory) Grid() *grid.Grid { return m.u.Grid }

// NumSteps implements Store.
func (m *Memory) NumSteps() int { return m.u.NumSteps() }

// DT implements Store.
func (m *Memory) DT() float32 { return m.u.DT }

// LoadStep implements Store.
func (m *Memory) LoadStep(t int) (*field.Field, error) {
	if t < 0 || t >= m.u.NumSteps() {
		return nil, fmt.Errorf("store: timestep %d out of range [0, %d)", t, m.u.NumSteps())
	}
	return m.u.Steps[t], nil
}

// Close implements Store.
func (m *Memory) Close() error { return nil }

// Unsteady returns the underlying dataset.
func (m *Memory) Unsteady() *field.Unsteady { return m.u }

// Window keeps a contiguous window of timesteps resident, backed by
// any Store. Particle paths "require a different timestep for every
// point in the path", so the windtunnel keeps the current timestep
// plus the maximum particle path length in memory (§5.1).
type Window struct {
	src  Store
	size int

	mu    sync.Mutex
	base  int
	steps map[int]*field.Field
}

// NewWindow wraps src with a resident window of size timesteps.
func NewWindow(src Store, size int) (*Window, error) {
	if size < 1 {
		return nil, fmt.Errorf("store: window size %d < 1", size)
	}
	return &Window{src: src, size: size, steps: make(map[int]*field.Field)}, nil
}

// Grid implements Store.
func (w *Window) Grid() *grid.Grid { return w.src.Grid() }

// NumSteps implements Store.
func (w *Window) NumSteps() int { return w.src.NumSteps() }

// DT implements Store.
func (w *Window) DT() float32 { return w.src.DT() }

// Close implements Store.
func (w *Window) Close() error { return w.src.Close() }

// SetBase slides the window so it covers [base, base+size), evicting
// steps that fell out and loading steps that entered.
func (w *Window) SetBase(base int) error {
	if base < 0 {
		base = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	for t := range w.steps {
		if t < base || t >= base+w.size {
			delete(w.steps, t)
		}
	}
	w.base = base
	hi := min(base+w.size, w.src.NumSteps())
	for t := base; t < hi; t++ {
		if _, ok := w.steps[t]; ok {
			continue
		}
		f, err := w.src.LoadStep(t)
		if err != nil {
			return fmt.Errorf("store: window load step %d: %w", t, err)
		}
		w.steps[t] = f
	}
	return nil
}

// LoadStep implements Store: resident steps return immediately, other
// steps fall through to the source.
func (w *Window) LoadStep(t int) (*field.Field, error) {
	w.mu.Lock()
	f, ok := w.steps[t]
	w.mu.Unlock()
	if ok {
		return f, nil
	}
	return w.src.LoadStep(t)
}

// Resident reports whether timestep t is in the window.
func (w *Window) Resident(t int) bool {
	w.mu.Lock()
	defer w.mu.Unlock()
	_, ok := w.steps[t]
	return ok
}
