package store

import (
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/vmath"
)

// makeDataset builds a small in-memory dataset whose step t has
// constant U = t, so loads are verifiable.
func makeDataset(t testing.TB, numSteps int) *field.Unsteady {
	t.Helper()
	g, err := grid.NewCartesian(8, 8, 4, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(7, 7, 3),
	})
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*field.Field, numSteps)
	for s := range steps {
		f := field.NewField(8, 8, 4, field.GridCoords)
		for i := range f.U {
			f.U[i] = float32(s)
		}
		steps[s] = f
	}
	u, err := field.NewUnsteady(g, steps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	return u
}

func checkStep(t *testing.T, f *field.Field, want float32) {
	t.Helper()
	if f.U[0] != want {
		t.Fatalf("step payload U[0] = %v, want %v", f.U[0], want)
	}
}

func TestMemoryStore(t *testing.T) {
	m := NewMemory(makeDataset(t, 5))
	if m.NumSteps() != 5 || m.DT() != 0.1 {
		t.Fatalf("metadata: steps=%d dt=%v", m.NumSteps(), m.DT())
	}
	f, err := m.LoadStep(3)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, f, 3)
	if _, err := m.LoadStep(-1); err == nil {
		t.Error("negative step accepted")
	}
	if _, err := m.LoadStep(5); err == nil {
		t.Error("overflow step accepted")
	}
}

func TestDiskRoundTrip(t *testing.T) {
	dir := t.TempDir()
	u := makeDataset(t, 4)
	if err := WriteDataset(dir, u); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if d.NumSteps() != 4 || absf(d.DT()-0.1) > 1e-6 {
		t.Fatalf("metadata: steps=%d dt=%v", d.NumSteps(), d.DT())
	}
	if d.Grid().NI != 8 || d.Grid().NK != 4 {
		t.Fatalf("grid dims %dx%dx%d", d.Grid().NI, d.Grid().NJ, d.Grid().NK)
	}
	for s := 0; s < 4; s++ {
		f, err := d.LoadStep(s)
		if err != nil {
			t.Fatal(err)
		}
		checkStep(t, f, float32(s))
	}
	loads, bytes, _ := d.Stats()
	if loads != 4 {
		t.Errorf("loads = %d, want 4", loads)
	}
	wantBytes := int64(4) * u.Steps[0].SizeBytes()
	if bytes != wantBytes {
		t.Errorf("bytesRead = %d, want %d", bytes, wantBytes)
	}
}

func TestDiskRejectsMissingDataset(t *testing.T) {
	if _, err := OpenDisk(t.TempDir(), DiskOptions{}); err == nil {
		t.Error("empty dir accepted")
	}
}

func TestDiskOutOfRange(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, makeDataset(t, 2)); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadStep(2); err == nil {
		t.Error("out-of-range step accepted")
	}
}

func TestDiskBandwidthThrottle(t *testing.T) {
	dir := t.TempDir()
	u := makeDataset(t, 2)
	if err := WriteDataset(dir, u); err != nil {
		t.Fatal(err)
	}
	// Step size is 8*8*4*12 = 3072 bytes. At 100 KB/s a load takes
	// >= ~30 ms.
	d, err := OpenDisk(dir, DiskOptions{BandwidthBytesPerSec: 100 * 1024})
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	if _, err := d.LoadStep(0); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 25*time.Millisecond {
		t.Errorf("throttled load took %v, want >= ~30ms", elapsed)
	}
}

func TestWindowResidency(t *testing.T) {
	m := NewMemory(makeDataset(t, 10))
	w, err := NewWindow(m, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetBase(2); err != nil {
		t.Fatal(err)
	}
	for _, tc := range []struct {
		step int
		want bool
	}{{1, false}, {2, true}, {3, true}, {4, true}, {5, false}} {
		if got := w.Resident(tc.step); got != tc.want {
			t.Errorf("Resident(%d) = %v, want %v", tc.step, got, tc.want)
		}
	}
	// Sliding forward evicts and loads.
	if err := w.SetBase(4); err != nil {
		t.Fatal(err)
	}
	if w.Resident(2) || !w.Resident(6) {
		t.Error("window did not slide")
	}
	// Non-resident steps still load through.
	f, err := w.LoadStep(0)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, f, 0)
}

func TestWindowClampsEnd(t *testing.T) {
	m := NewMemory(makeDataset(t, 4))
	w, _ := NewWindow(m, 10)
	if err := w.SetBase(2); err != nil {
		t.Fatal(err)
	}
	if !w.Resident(3) || w.Resident(4) {
		t.Error("window end clamping wrong")
	}
}

func TestNewWindowValidation(t *testing.T) {
	m := NewMemory(makeDataset(t, 2))
	if _, err := NewWindow(m, 0); err == nil {
		t.Error("zero window accepted")
	}
}

// slowStore wraps Memory with a fixed delay, to observe prefetch
// overlap deterministically.
type slowStore struct {
	*Memory
	delay time.Duration
}

func (s slowStore) LoadStep(t int) (*field.Field, error) {
	time.Sleep(s.delay)
	return s.Memory.LoadStep(t)
}

func TestPrefetcherOverlapsLoads(t *testing.T) {
	src := slowStore{NewMemory(makeDataset(t, 10)), 30 * time.Millisecond}
	p := NewPrefetcher(src)
	p.Prefetch(1)
	time.Sleep(40 * time.Millisecond) // let the background load finish
	start := time.Now()
	f, err := p.LoadStep(1)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, f, 1)
	if elapsed := time.Since(start); elapsed > 15*time.Millisecond {
		t.Errorf("prefetched load took %v, want ~0", elapsed)
	}
	if st := p.Stats(); st.Hits != 1 || st.Misses != 0 || st.Issued != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrefetcherMissFallsThrough(t *testing.T) {
	p := NewPrefetcher(NewMemory(makeDataset(t, 5)))
	f, err := p.LoadStep(2)
	if err != nil {
		t.Fatal(err)
	}
	checkStep(t, f, 2)
	if st := p.Stats(); st.Hits != 0 || st.Misses != 1 {
		t.Errorf("stats = %+v", st)
	}
}

func TestPrefetcherIgnoresOutOfRange(t *testing.T) {
	p := NewPrefetcher(NewMemory(makeDataset(t, 3)))
	p.Prefetch(-1)
	p.Prefetch(3)
	if st := p.Stats(); st.Issued != 0 {
		t.Errorf("out-of-range prefetches issued loads: %+v", st)
	}
	// Must not leave pending entries that a LoadStep would wait on.
	if _, err := p.LoadStep(0); err != nil {
		t.Fatal(err)
	}
}

func TestPrefetcherConcurrentAccess(t *testing.T) {
	p := NewPrefetcher(NewMemory(makeDataset(t, 20)))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for s := 0; s < 20; s++ {
				p.Prefetch(s)
				f, err := p.LoadStep(s)
				if err != nil {
					t.Errorf("worker %d step %d: %v", w, s, err)
					return
				}
				if f.U[0] != float32(s) {
					t.Errorf("worker %d step %d wrong payload", w, s)
					return
				}
			}
		}(w)
	}
	wg.Wait()
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkDiskLoadStep(b *testing.B) {
	dir := b.TempDir()
	g, _ := grid.NewCartesian(64, 64, 32, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(1, 1, 1),
	})
	f := field.NewField(64, 64, 32, field.GridCoords)
	u, _ := field.NewUnsteady(g, []*field.Field{f}, 0.1)
	if err := WriteDataset(dir, u); err != nil {
		b.Fatal(err)
	}
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(f.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := d.LoadStep(0); err != nil {
			b.Fatal(err)
		}
	}
}

func TestOpenDiskRejectsCorruptMeta(t *testing.T) {
	dir := t.TempDir()
	u := makeDataset(t, 2)
	if err := WriteDataset(dir, u); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.vwt"), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, DiskOptions{}); err == nil {
		t.Error("corrupt meta accepted")
	}
	if err := os.WriteFile(filepath.Join(dir, "meta.vwt"), []byte("steps 0\ndt 0.1\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDisk(dir, DiskOptions{}); err == nil {
		t.Error("zero steps accepted")
	}
}

func TestDiskMissingStepFile(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, makeDataset(t, 3)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "step_000001.vwt")); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := d.LoadStep(1); err == nil {
		t.Error("missing step file loaded")
	}
	if _, err := d.LoadStep(0); err != nil {
		t.Errorf("intact step failed: %v", err)
	}
}

func TestWindowPropagatesLoadError(t *testing.T) {
	dir := t.TempDir()
	if err := WriteDataset(dir, makeDataset(t, 4)); err != nil {
		t.Fatal(err)
	}
	if err := os.Remove(filepath.Join(dir, "step_000002.vwt")); err != nil {
		t.Fatal(err)
	}
	d, err := OpenDisk(dir, DiskOptions{})
	if err != nil {
		t.Fatal(err)
	}
	w, err := NewWindow(d, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetBase(1); err == nil {
		t.Error("window slide over missing step succeeded")
	}
}

func TestWindowNegativeBaseClamps(t *testing.T) {
	w, err := NewWindow(NewMemory(makeDataset(t, 5)), 2)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.SetBase(-7); err != nil {
		t.Fatal(err)
	}
	if !w.Resident(0) {
		t.Error("clamped base did not load step 0")
	}
}

func TestMemoryUnsteadyAccessor(t *testing.T) {
	u := makeDataset(t, 2)
	m := NewMemory(u)
	if m.Unsteady() != u {
		t.Error("Unsteady accessor broken")
	}
	if m.Close() != nil {
		t.Error("Close failed")
	}
}
