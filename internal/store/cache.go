package store

import (
	"container/list"
	"fmt"
	"sync"
	"sync/atomic"

	"repro/internal/field"
	"repro/internal/grid"
)

// CacheOptions configures a Cache.
type CacheOptions struct {
	// MaxSteps bounds the number of resident timesteps. Zero means no
	// count bound.
	MaxSteps int
	// MaxBytes bounds the total resident field bytes. Zero means no
	// byte bound.
	MaxBytes int64
}

// Cache keeps recently used timesteps resident under a memory budget,
// shared by every session of the server. In the disk regime the paper's
// remote host pays one mass-storage read per timestep per playback
// pass; with many workstations attached, the sessions' overlapping
// time positions make most loads repeats, so a shared LRU in front of
// the disk turns them into memory hits. The cache is a Store, layered
// under the Prefetcher (figure 8): prefetched loads fill it, and both
// foreground and background loads of the same step are coalesced into
// a single underlying read.
//
// At least one timestep stays resident regardless of budget — a cache
// that cannot hold the step it just loaded would re-read every call.
type Cache struct {
	src  Store
	opts CacheOptions

	mu       sync.Mutex
	entries  map[int]*list.Element // timestep -> lru element
	lru      *list.List            // of *cacheEntry; front = most recent
	bytes    int64
	inflight map[int]*cacheFlight

	hits, misses, coalesced, evictions atomic.Int64
}

type cacheEntry struct {
	t    int
	f    *field.Field
	size int64
}

// cacheFlight is one in-progress underlying load; concurrent callers
// for the same step wait on done instead of issuing duplicate reads.
type cacheFlight struct {
	done chan struct{}
	f    *field.Field
	err  error
}

// NewCache wraps src with a shared LRU under the given budget.
func NewCache(src Store, opts CacheOptions) (*Cache, error) {
	if opts.MaxSteps < 0 || opts.MaxBytes < 0 {
		return nil, fmt.Errorf("store: negative cache budget (steps=%d bytes=%d)",
			opts.MaxSteps, opts.MaxBytes)
	}
	return &Cache{
		src:      src,
		opts:     opts,
		entries:  make(map[int]*list.Element),
		lru:      list.New(),
		inflight: make(map[int]*cacheFlight),
	}, nil
}

// Grid implements Store.
func (c *Cache) Grid() *grid.Grid { return c.src.Grid() }

// NumSteps implements Store.
func (c *Cache) NumSteps() int { return c.src.NumSteps() }

// DT implements Store.
func (c *Cache) DT() float32 { return c.src.DT() }

// Close implements Store.
func (c *Cache) Close() error { return c.src.Close() }

// LoadStep implements Store. Resident steps return immediately; a step
// already being loaded is joined rather than re-read; anything else
// reads from the source and becomes resident, evicting least-recently
// used steps past the budget.
func (c *Cache) LoadStep(t int) (*field.Field, error) {
	if t < 0 || t >= c.src.NumSteps() {
		return nil, fmt.Errorf("store: timestep %d out of range [0, %d)", t, c.src.NumSteps())
	}
	c.mu.Lock()
	if el, ok := c.entries[t]; ok {
		c.lru.MoveToFront(el)
		c.mu.Unlock()
		c.hits.Add(1)
		return el.Value.(*cacheEntry).f, nil
	}
	if fl, ok := c.inflight[t]; ok {
		c.mu.Unlock()
		c.coalesced.Add(1)
		<-fl.done
		return fl.f, fl.err
	}
	fl := &cacheFlight{done: make(chan struct{})}
	c.inflight[t] = fl
	c.mu.Unlock()
	c.misses.Add(1)

	f, err := c.src.LoadStep(t)
	fl.f, fl.err = f, err

	c.mu.Lock()
	delete(c.inflight, t)
	if err == nil {
		c.insertLocked(t, f)
	}
	c.mu.Unlock()
	close(fl.done)
	return f, err
}

// insertLocked makes timestep t resident and evicts over budget. The
// most recent entry is never evicted.
func (c *Cache) insertLocked(t int, f *field.Field) {
	if el, ok := c.entries[t]; ok {
		// A racing load of the same step can beat us here only via
		// Invalidate windows; keep the existing entry fresh.
		c.lru.MoveToFront(el)
		return
	}
	e := &cacheEntry{t: t, f: f, size: f.SizeBytes()}
	c.entries[t] = c.lru.PushFront(e)
	c.bytes += e.size
	for c.lru.Len() > 1 && c.overBudgetLocked() {
		back := c.lru.Back()
		victim := back.Value.(*cacheEntry)
		c.lru.Remove(back)
		delete(c.entries, victim.t)
		c.bytes -= victim.size
		c.evictions.Add(1)
	}
}

func (c *Cache) overBudgetLocked() bool {
	if c.opts.MaxSteps > 0 && c.lru.Len() > c.opts.MaxSteps {
		return true
	}
	if c.opts.MaxBytes > 0 && c.bytes > c.opts.MaxBytes {
		return true
	}
	return false
}

// Resident reports whether timestep t is currently cached.
func (c *Cache) Resident(t int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	_, ok := c.entries[t]
	return ok
}

// CacheStats counts cache activity. Hits were served from resident
// steps, Coalesced joined an in-flight load (no second read issued),
// Misses paid an underlying read, Evictions counts steps dropped to
// stay within budget.
type CacheStats struct {
	Hits, Misses, Coalesced, Evictions int64
	ResidentSteps                      int
	ResidentBytes                      int64
}

// HitRate returns the fraction of LoadStep calls that avoided an
// underlying read (hits plus coalesced joins), or 0 with no traffic.
func (s CacheStats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Coalesced
	if total == 0 {
		return 0
	}
	return float64(s.Hits+s.Coalesced) / float64(total)
}

// String renders the counters as the one-line summary vwserver's stats
// ticker logs.
func (s CacheStats) String() string {
	return fmt.Sprintf(
		"hits=%d misses=%d coalesced=%d evictions=%d resident=%d (%.1fMB) hit=%.0f%%",
		s.Hits, s.Misses, s.Coalesced, s.Evictions,
		s.ResidentSteps, float64(s.ResidentBytes)/(1<<20), 100*s.HitRate())
}

// Stats reports cumulative cache statistics.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	resident := c.lru.Len()
	bytes := c.bytes
	c.mu.Unlock()
	return CacheStats{
		Hits:          c.hits.Load(),
		Misses:        c.misses.Load(),
		Coalesced:     c.coalesced.Load(),
		Evictions:     c.evictions.Load(),
		ResidentSteps: resident,
		ResidentBytes: bytes,
	}
}
