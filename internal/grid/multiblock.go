package grid

import (
	"fmt"

	"repro/internal/vmath"
)

// Multiblock is a composite of several curvilinear grids ("blocks") —
// the paper's §7 future work: "extension of the computational
// algorithms to handle multiple grid data sets". Complex vehicle
// geometries (the hovering Harrier the paper mentions) were meshed as
// overlapping or abutting blocks; a particle integrated through the
// flow must hop between blocks as it leaves one and enters another.
//
// A position in a multiblock dataset is a BlockCoord: a block index
// plus a grid coordinate within that block.
type Multiblock struct {
	Blocks []*Grid
	// bounds caches each block's physical bounding box for fast
	// candidate rejection during point location.
	bounds []vmath.AABB
}

// NewMultiblock validates and assembles the composite.
func NewMultiblock(blocks ...*Grid) (*Multiblock, error) {
	if len(blocks) == 0 {
		return nil, fmt.Errorf("grid: multiblock needs at least one block")
	}
	m := &Multiblock{Blocks: blocks, bounds: make([]vmath.AABB, len(blocks))}
	for i, b := range blocks {
		if err := b.Validate(); err != nil {
			return nil, fmt.Errorf("grid: block %d: %w", i, err)
		}
		m.bounds[i] = b.Bounds()
	}
	return m, nil
}

// NumBlocks returns the block count.
func (m *Multiblock) NumBlocks() int { return len(m.Blocks) }

// Bounds returns the union physical bounding box.
func (m *Multiblock) Bounds() vmath.AABB {
	b := m.bounds[0]
	for _, bb := range m.bounds[1:] {
		b = b.Extend(bb.Min).Extend(bb.Max)
	}
	return b
}

// BlockCoord locates a point in the composite: which block, and where
// in that block's computational space.
type BlockCoord struct {
	Block int
	GC    vmath.Vec3
}

// PhysAt returns the physical position of a block coordinate.
func (m *Multiblock) PhysAt(bc BlockCoord) vmath.Vec3 {
	return m.Blocks[bc.Block].PhysAt(bc.GC)
}

// Locate finds the block containing physical point p, preferring the
// guess block (particles usually stay where they were last frame, so
// the common case is one Newton solve). Returns ErrNotFound when no
// block contains p.
func (m *Multiblock) Locate(p vmath.Vec3, guess BlockCoord) (BlockCoord, error) {
	// Try the guess block first with the guess coordinate.
	order := make([]int, 0, len(m.Blocks))
	if guess.Block >= 0 && guess.Block < len(m.Blocks) {
		order = append(order, guess.Block)
	}
	for i := range m.Blocks {
		if i != guess.Block {
			order = append(order, i)
		}
	}
	for _, bi := range order {
		// Cheap reject on the block's bounding box, slightly inflated
		// because curvilinear boundaries are not axis aligned.
		bb := m.bounds[bi]
		margin := bb.Size().Scale(0.05)
		wide := vmath.AABB{Min: bb.Min.Sub(margin), Max: bb.Max.Add(margin)}
		if !wide.Contains(p) {
			continue
		}
		g := m.Blocks[bi]
		start := guess.GC
		if bi != guess.Block {
			start = vmath.Vec3{
				X: float32(g.NI-1) / 2,
				Y: float32(g.NJ-1) / 2,
				Z: float32(g.NK-1) / 2,
			}
		}
		gc, err := g.PhysToGrid(p, start)
		if err == nil {
			return BlockCoord{Block: bi, GC: gc}, nil
		}
	}
	return BlockCoord{}, ErrNotFound
}

// Transfer attempts to continue a path that left block bc.Block at
// physical position p into another block: the block-hopping step of
// multiblock integration. The origin block is excluded from the
// search.
func (m *Multiblock) Transfer(p vmath.Vec3, from int) (BlockCoord, error) {
	for bi, g := range m.Blocks {
		if bi == from {
			continue
		}
		bb := m.bounds[bi]
		margin := bb.Size().Scale(0.05)
		wide := vmath.AABB{Min: bb.Min.Sub(margin), Max: bb.Max.Add(margin)}
		if !wide.Contains(p) {
			continue
		}
		center := vmath.Vec3{
			X: float32(g.NI-1) / 2,
			Y: float32(g.NJ-1) / 2,
			Z: float32(g.NK-1) / 2,
		}
		gc, err := g.PhysToGrid(p, center)
		if err == nil {
			return BlockCoord{Block: bi, GC: gc}, nil
		}
	}
	return BlockCoord{}, ErrNotFound
}
