// Package grid implements the curvilinear computational grids on which
// the windtunnel's flowfields live. A grid stores the physical position
// of each node indexed by integer computational coordinates (i, j, k).
//
// Following §2.1 of the paper, all particle integration happens in
// computational ("grid") coordinates: velocities are pre-converted to
// grid coordinates once per dataset, so each integration step needs
// only array indexing and trilinear interpolation — never a search of
// the curvilinear grid. Paths are converted back to physical
// coordinates by direct lookup of node positions with trilinear
// interpolation.
package grid

import (
	"errors"
	"fmt"
	"math"

	"repro/internal/vmath"
)

// Grid is a structured curvilinear grid of NI x NJ x NK nodes. Node
// (i, j, k) has physical position (X[idx], Y[idx], Z[idx]) with
// idx = (k*NJ + j)*NI + i; i varies fastest, matching PLOT3D ordering.
type Grid struct {
	NI, NJ, NK int
	X, Y, Z    []float32
}

// New allocates an empty grid of the given dimensions. Each dimension
// must be at least 2 so every cell has a full trilinear stencil.
func New(ni, nj, nk int) (*Grid, error) {
	if ni < 2 || nj < 2 || nk < 2 {
		return nil, fmt.Errorf("grid: dimensions %dx%dx%d too small (need >= 2 each)", ni, nj, nk)
	}
	n := ni * nj * nk
	return &Grid{
		NI: ni, NJ: nj, NK: nk,
		X: make([]float32, n),
		Y: make([]float32, n),
		Z: make([]float32, n),
	}, nil
}

// NumNodes returns the total number of grid nodes.
func (g *Grid) NumNodes() int { return g.NI * g.NJ * g.NK }

// Index returns the linear index of node (i, j, k). It does not bounds
// check; callers on hot paths have already validated.
func (g *Grid) Index(i, j, k int) int { return (k*g.NJ+j)*g.NI + i }

// At returns the physical position of node (i, j, k).
func (g *Grid) At(i, j, k int) vmath.Vec3 {
	idx := g.Index(i, j, k)
	return vmath.Vec3{X: g.X[idx], Y: g.Y[idx], Z: g.Z[idx]}
}

// SetAt sets the physical position of node (i, j, k).
func (g *Grid) SetAt(i, j, k int, p vmath.Vec3) {
	idx := g.Index(i, j, k)
	g.X[idx], g.Y[idx], g.Z[idx] = p.X, p.Y, p.Z
}

// InBounds reports whether the grid coordinate gc lies inside the
// grid's computational domain [0, NI-1] x [0, NJ-1] x [0, NK-1].
func (g *Grid) InBounds(gc vmath.Vec3) bool {
	return gc.X >= 0 && gc.X <= float32(g.NI-1) &&
		gc.Y >= 0 && gc.Y <= float32(g.NJ-1) &&
		gc.Z >= 0 && gc.Z <= float32(g.NK-1)
}

// ClampToBounds returns gc clamped into the computational domain.
func (g *Grid) ClampToBounds(gc vmath.Vec3) vmath.Vec3 {
	return vmath.Vec3{
		X: clamp(gc.X, 0, float32(g.NI-1)),
		Y: clamp(gc.Y, 0, float32(g.NJ-1)),
		Z: clamp(gc.Z, 0, float32(g.NK-1)),
	}
}

func clamp(v, lo, hi float32) float32 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// cellOf splits a grid coordinate into a cell origin (i0, j0, k0) and
// fractional offsets in [0, 1]. Coordinates on the high boundary fold
// into the last cell so interpolation stays in range.
func (g *Grid) cellOf(gc vmath.Vec3) (i0, j0, k0 int, fx, fy, fz float32) {
	i0, fx = splitCoord(gc.X, g.NI)
	j0, fy = splitCoord(gc.Y, g.NJ)
	k0, fz = splitCoord(gc.Z, g.NK)
	return
}

func splitCoord(c float32, n int) (int, float32) {
	i := int(math.Floor(float64(c)))
	if i < 0 {
		i = 0
	}
	if i > n-2 {
		i = n - 2
	}
	return i, c - float32(i)
}

// PhysAt returns the physical position corresponding to grid
// coordinate gc, by trilinear interpolation of node positions. gc is
// clamped to the computational domain.
func (g *Grid) PhysAt(gc vmath.Vec3) vmath.Vec3 {
	gc = g.ClampToBounds(gc)
	i0, j0, k0, fx, fy, fz := g.cellOf(gc)
	return vmath.Vec3{
		X: g.trilerp(g.X, i0, j0, k0, fx, fy, fz),
		Y: g.trilerp(g.Y, i0, j0, k0, fx, fy, fz),
		Z: g.trilerp(g.Z, i0, j0, k0, fx, fy, fz),
	}
}

// trilerp performs trilinear interpolation of scalar array a at the
// cell with origin (i0, j0, k0) and fractions (fx, fy, fz). This is
// the "eight floating point loads plus a trilinear interpolation"
// the paper counts per component per point (§5.3).
func (g *Grid) trilerp(a []float32, i0, j0, k0 int, fx, fy, fz float32) float32 {
	base := g.Index(i0, j0, k0)
	ni := g.NI
	slab := g.NI * g.NJ

	c000 := a[base]
	c100 := a[base+1]
	c010 := a[base+ni]
	c110 := a[base+ni+1]
	c001 := a[base+slab]
	c101 := a[base+slab+1]
	c011 := a[base+slab+ni]
	c111 := a[base+slab+ni+1]

	c00 := c000 + fx*(c100-c000)
	c10 := c010 + fx*(c110-c010)
	c01 := c001 + fx*(c101-c001)
	c11 := c011 + fx*(c111-c011)

	c0 := c00 + fy*(c10-c00)
	c1 := c01 + fy*(c11-c01)
	return c0 + fz*(c1-c0)
}

// Trilerp exposes trilinear interpolation of an arbitrary node-indexed
// scalar array (len == NumNodes) at grid coordinate gc. Field sampling
// uses it to interpolate velocity components stored outside the grid.
func (g *Grid) Trilerp(a []float32, gc vmath.Vec3) float32 {
	gc = g.ClampToBounds(gc)
	i0, j0, k0, fx, fy, fz := g.cellOf(gc)
	return g.trilerp(a, i0, j0, k0, fx, fy, fz)
}

// Bounds returns the physical axis-aligned bounding box of all nodes.
func (g *Grid) Bounds() vmath.AABB {
	b := vmath.NewAABB()
	for i := range g.X {
		b = b.Extend(vmath.Vec3{X: g.X[i], Y: g.Y[i], Z: g.Z[i]})
	}
	return b
}

// Jacobian returns the 3x3 Jacobian d(phys)/d(grid) at grid coordinate
// gc, estimated by central differences of the trilinear position map.
// Columns are the physical-space derivatives along i, j, k.
func (g *Grid) Jacobian(gc vmath.Vec3) (cols [3]vmath.Vec3) {
	const h = 0.25
	for axis := 0; axis < 3; axis++ {
		lo, hi := gc, gc
		switch axis {
		case 0:
			lo.X -= h
			hi.X += h
		case 1:
			lo.Y -= h
			hi.Y += h
		case 2:
			lo.Z -= h
			hi.Z += h
		}
		lo = g.ClampToBounds(lo)
		hi = g.ClampToBounds(hi)
		var span float32
		switch axis {
		case 0:
			span = hi.X - lo.X
		case 1:
			span = hi.Y - lo.Y
		case 2:
			span = hi.Z - lo.Z
		}
		if span == 0 {
			span = 1
		}
		cols[axis] = g.PhysAt(hi).Sub(g.PhysAt(lo)).Scale(1 / span)
	}
	return cols
}

// ErrNotFound is returned by PhysToGrid when the physical point cannot
// be located inside the grid.
var ErrNotFound = errors.New("grid: physical point outside grid")

// PhysToGrid locates the grid coordinate whose physical image is p,
// starting the search from the guess coordinate (pass the previous
// particle position for fast coherent lookups). It uses damped Newton
// iteration on the trilinear map — the "search of the curvilinear
// grid" whose per-step cost the paper avoids by integrating in grid
// coordinates. It exists both for seeding tools from physical space
// (rake handles live in physical coordinates) and as the baseline for
// the grid-coordinate ablation benchmark.
func (g *Grid) PhysToGrid(p vmath.Vec3, guess vmath.Vec3) (vmath.Vec3, error) {
	gc := g.ClampToBounds(guess)
	const maxIter = 50
	for iter := 0; iter < maxIter; iter++ {
		cur := g.PhysAt(gc)
		resid := p.Sub(cur)
		if resid.Len() < 1e-5 {
			return gc, nil
		}
		cols := g.Jacobian(gc)
		step, ok := solve3(cols, resid)
		if !ok {
			return vmath.Vec3{}, ErrNotFound
		}
		// Damp large steps so the walk cannot jump over thin cells.
		const maxStep = 2.0
		if l := step.Len(); l > maxStep {
			step = step.Scale(maxStep / l)
		}
		gc = g.ClampToBounds(gc.Add(step))
	}
	// Accept if converged to the boundary of the domain nearest p.
	if g.PhysAt(gc).Dist(p) < 1e-3 {
		return gc, nil
	}
	return vmath.Vec3{}, ErrNotFound
}

// solve3 solves the 3x3 system [c0 c1 c2] x = b by Cramer's rule.
func solve3(cols [3]vmath.Vec3, b vmath.Vec3) (vmath.Vec3, bool) {
	det := cols[0].Dot(cols[1].Cross(cols[2]))
	if absf(det) < 1e-12 {
		return vmath.Vec3{}, false
	}
	inv := 1 / det
	x := b.Dot(cols[1].Cross(cols[2])) * inv
	y := cols[0].Dot(b.Cross(cols[2])) * inv
	z := cols[0].Dot(cols[1].Cross(b)) * inv
	return vmath.Vec3{X: x, Y: y, Z: z}, true
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

// Validate checks structural invariants: coordinate array lengths match
// the dimensions and all node positions are finite.
func (g *Grid) Validate() error {
	n := g.NumNodes()
	if len(g.X) != n || len(g.Y) != n || len(g.Z) != n {
		return fmt.Errorf("grid: coordinate arrays have %d/%d/%d entries, want %d",
			len(g.X), len(g.Y), len(g.Z), n)
	}
	for i := 0; i < n; i++ {
		p := vmath.Vec3{X: g.X[i], Y: g.Y[i], Z: g.Z[i]}
		if !p.IsFinite() {
			return fmt.Errorf("grid: node %d has non-finite position %v", i, p)
		}
	}
	return nil
}
