package grid

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vmath"
)

func unitBox() vmath.AABB {
	return vmath.AABB{Min: vmath.V3(0, 0, 0), Max: vmath.V3(1, 1, 1)}
}

func TestNewRejectsTinyDims(t *testing.T) {
	for _, dims := range [][3]int{{1, 4, 4}, {4, 1, 4}, {4, 4, 1}, {0, 0, 0}} {
		if _, err := New(dims[0], dims[1], dims[2]); err == nil {
			t.Errorf("New(%v) succeeded, want error", dims)
		}
	}
}

func TestCartesianNodePositions(t *testing.T) {
	box := vmath.AABB{Min: vmath.V3(-1, -2, -3), Max: vmath.V3(1, 2, 3)}
	g, err := NewCartesian(5, 5, 5, box)
	if err != nil {
		t.Fatal(err)
	}
	if got := g.At(0, 0, 0); got != box.Min {
		t.Errorf("corner 000 = %v", got)
	}
	if got := g.At(4, 4, 4); got != box.Max {
		t.Errorf("corner max = %v", got)
	}
	if got := g.At(2, 2, 2); !got.ApproxEqual(vmath.V3(0, 0, 0), 1e-6) {
		t.Errorf("center = %v", got)
	}
	if err := g.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestPhysAtMatchesNodesExactly(t *testing.T) {
	g, _ := NewStretchedBox(6, 5, 4, unitBox(), 1.7)
	for k := 0; k < g.NK; k++ {
		for j := 0; j < g.NJ; j++ {
			for i := 0; i < g.NI; i++ {
				gc := vmath.V3(float32(i), float32(j), float32(k))
				got := g.PhysAt(gc)
				want := g.At(i, j, k)
				if !got.ApproxEqual(want, 1e-6) {
					t.Fatalf("PhysAt(%v) = %v, want %v", gc, got, want)
				}
			}
		}
	}
}

func TestPhysAtLinearInCell(t *testing.T) {
	// On a Cartesian grid the trilinear map is globally linear, so the
	// midpoint of any two grid coords maps to the midpoint in space.
	g, _ := NewCartesian(4, 4, 4, unitBox())
	f := func(ax, ay, az, bx, by, bz float32) bool {
		a := g.ClampToBounds(vmath.V3(wrap(ax, 3), wrap(ay, 3), wrap(az, 3)))
		b := g.ClampToBounds(vmath.V3(wrap(bx, 3), wrap(by, 3), wrap(bz, 3)))
		mid := a.Lerp(b, 0.5)
		want := g.PhysAt(a).Lerp(g.PhysAt(b), 0.5)
		return g.PhysAt(mid).ApproxEqual(want, 1e-5)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func wrap(f float32, n float32) float32 {
	if f != f { // NaN
		return 0
	}
	v := float32(math.Abs(float64(f)))
	return float32(math.Mod(float64(v), float64(n)))
}

func TestTrilerpConstantField(t *testing.T) {
	g, _ := NewTaperedCylinder(TaperedCylinderSpec{
		NI: 8, NJ: 12, NK: 5, R0: 1, R1: 0.5, Router: 10, Span: 8, Stretch: 2,
	})
	a := make([]float32, g.NumNodes())
	for i := range a {
		a[i] = 7.5
	}
	rng := rand.New(rand.NewSource(1))
	for n := 0; n < 100; n++ {
		gc := vmath.V3(rng.Float32()*7, rng.Float32()*11, rng.Float32()*4)
		if got := g.Trilerp(a, gc); absf32(got-7.5) > 1e-5 {
			t.Fatalf("Trilerp constant at %v = %v", gc, got)
		}
	}
}

func TestTrilerpBoundsClamping(t *testing.T) {
	g, _ := NewCartesian(3, 3, 3, unitBox())
	a := make([]float32, g.NumNodes())
	for i := range a {
		a[i] = float32(i)
	}
	// Far outside coordinates must not panic and must equal the
	// clamped lookup.
	out := vmath.V3(-10, 50, 2.5)
	want := g.Trilerp(a, g.ClampToBounds(out))
	if got := g.Trilerp(a, out); got != want {
		t.Errorf("out-of-bounds trilerp = %v, want %v", got, want)
	}
}

func TestPhysToGridRoundTripCartesian(t *testing.T) {
	g, _ := NewCartesian(9, 9, 9, vmath.AABB{Min: vmath.V3(-2, -2, -2), Max: vmath.V3(2, 2, 2)})
	rng := rand.New(rand.NewSource(2))
	for n := 0; n < 50; n++ {
		gc := vmath.V3(rng.Float32()*8, rng.Float32()*8, rng.Float32()*8)
		p := g.PhysAt(gc)
		got, err := g.PhysToGrid(p, vmath.V3(4, 4, 4))
		if err != nil {
			t.Fatalf("PhysToGrid(%v): %v", p, err)
		}
		if !g.PhysAt(got).ApproxEqual(p, 1e-3) {
			t.Fatalf("round trip %v -> %v -> %v", gc, got, g.PhysAt(got))
		}
	}
}

func TestPhysToGridRoundTripCurvilinear(t *testing.T) {
	g, _ := NewTaperedCylinder(DefaultTaperedCylinder())
	rng := rand.New(rand.NewSource(3))
	for n := 0; n < 30; n++ {
		// Stay off the periodic cut (j near NJ-1) where the physical
		// map folds back and the inverse is ambiguous.
		gc := vmath.V3(
			rng.Float32()*float32(g.NI-1),
			rng.Float32()*float32(g.NJ-10),
			rng.Float32()*float32(g.NK-1),
		)
		p := g.PhysAt(gc)
		got, err := g.PhysToGrid(p, gc.Add(vmath.V3(0.4, 0.4, 0.4)))
		if err != nil {
			t.Fatalf("PhysToGrid at gc=%v p=%v: %v", gc, p, err)
		}
		if !g.PhysAt(got).ApproxEqual(p, 5e-3) {
			t.Fatalf("round trip gc=%v got=%v phys %v vs %v", gc, got, g.PhysAt(got), p)
		}
	}
}

func TestPhysToGridOutside(t *testing.T) {
	g, _ := NewCartesian(4, 4, 4, unitBox())
	if _, err := g.PhysToGrid(vmath.V3(50, 50, 50), vmath.V3(1, 1, 1)); err == nil {
		t.Error("PhysToGrid far outside succeeded, want error")
	}
}

func TestJacobianCartesian(t *testing.T) {
	// A [0,2]^3 box on a 3-node-per-axis grid has spacing 1 per index,
	// so the Jacobian is the identity.
	g, _ := NewCartesian(3, 3, 3, vmath.AABB{Min: vmath.V3(0, 0, 0), Max: vmath.V3(2, 2, 2)})
	cols := g.Jacobian(vmath.V3(1, 1, 1))
	want := [3]vmath.Vec3{vmath.V3(1, 0, 0), vmath.V3(0, 1, 0), vmath.V3(0, 0, 1)}
	for a := 0; a < 3; a++ {
		if !cols[a].ApproxEqual(want[a], 1e-4) {
			t.Errorf("Jacobian col %d = %v, want %v", a, cols[a], want[a])
		}
	}
}

func TestTaperedCylinderGeometry(t *testing.T) {
	spec := DefaultTaperedCylinder()
	g, err := NewTaperedCylinder(spec)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.Validate(); err != nil {
		t.Fatal(err)
	}
	// Inner wall nodes (i = 0) must sit on the tapered radius.
	for k := 0; k < g.NK; k += 7 {
		fz := float32(k) / float32(g.NK-1)
		wantR := spec.R0 + (spec.R1-spec.R0)*fz
		for j := 0; j < g.NJ; j += 11 {
			p := g.At(0, j, k)
			r := float32(math.Hypot(float64(p.X), float64(p.Y)))
			if absf32(r-wantR) > 1e-4 {
				t.Fatalf("wall node (0,%d,%d) radius %v, want %v", j, k, r, wantR)
			}
		}
	}
	// Outer boundary nodes (i = NI-1) at Router.
	p := g.At(g.NI-1, 0, 0)
	r := float32(math.Hypot(float64(p.X), float64(p.Y)))
	if absf32(r-spec.Router) > 1e-3 {
		t.Errorf("outer node radius %v, want %v", r, spec.Router)
	}
	// Paper scale check: default grid node count matches the paper's
	// tapered cylinder 131,072 points (64*64*32).
	if g.NumNodes() != 131072 {
		t.Errorf("default tapered cylinder has %d nodes, want 131072", g.NumNodes())
	}
}

func TestTaperedCylinderRejectsBadSpec(t *testing.T) {
	bad := []TaperedCylinderSpec{
		{NI: 4, NJ: 4, NK: 4, R0: 0, R1: 1, Router: 5, Span: 1, Stretch: 1},
		{NI: 4, NJ: 4, NK: 4, R0: 1, R1: 1, Router: 0.5, Span: 1, Stretch: 1},
		{NI: 4, NJ: 4, NK: 4, R0: 1, R1: 1, Router: 5, Span: 1, Stretch: 0.5},
	}
	for i, spec := range bad {
		if _, err := NewTaperedCylinder(spec); err == nil {
			t.Errorf("spec %d accepted, want error", i)
		}
	}
}

func TestBounds(t *testing.T) {
	box := vmath.AABB{Min: vmath.V3(-3, 0, 1), Max: vmath.V3(3, 2, 4)}
	g, _ := NewCartesian(4, 4, 4, box)
	b := g.Bounds()
	if !b.Min.ApproxEqual(box.Min, 1e-6) || !b.Max.ApproxEqual(box.Max, 1e-6) {
		t.Errorf("Bounds = %v..%v, want %v..%v", b.Min, b.Max, box.Min, box.Max)
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	g, _ := NewCartesian(3, 3, 3, unitBox())
	g.X[5] = float32(math.NaN())
	if err := g.Validate(); err == nil {
		t.Error("Validate accepted NaN node")
	}
	g2, _ := NewCartesian(3, 3, 3, unitBox())
	g2.Y = g2.Y[:10]
	if err := g2.Validate(); err == nil {
		t.Error("Validate accepted short coordinate array")
	}
}

func absf32(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkTrilerp(b *testing.B) {
	g, _ := NewTaperedCylinder(DefaultTaperedCylinder())
	a := make([]float32, g.NumNodes())
	for i := range a {
		a[i] = float32(i % 97)
	}
	gc := vmath.V3(10.3, 20.7, 5.1)
	b.ResetTimer()
	var sink float32
	for i := 0; i < b.N; i++ {
		sink += g.Trilerp(a, gc)
	}
	_ = sink
}

func BenchmarkPhysToGrid(b *testing.B) {
	g, _ := NewTaperedCylinder(DefaultTaperedCylinder())
	p := g.PhysAt(vmath.V3(10, 20, 5))
	guess := vmath.V3(9, 19, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := g.PhysToGrid(p, guess); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPhysAtConvexityProperty(t *testing.T) {
	// Property: the trilinear map is convex per cell, so PhysAt(gc)
	// lies inside the bounding box of the cell's eight corner nodes.
	g, err := NewTaperedCylinder(TaperedCylinderSpec{
		NI: 12, NJ: 16, NK: 6, R0: 1, R1: 0.5, Router: 8, Span: 10, Stretch: 1.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	f := func(fx, fy, fz float32) bool {
		gc := vmath.V3(wrap(fx, float32(g.NI-1)), wrap(fy, float32(g.NJ-1)), wrap(fz, float32(g.NK-1)))
		p := g.PhysAt(gc)
		i0 := int(gc.X)
		j0 := int(gc.Y)
		k0 := int(gc.Z)
		if i0 > g.NI-2 {
			i0 = g.NI - 2
		}
		if j0 > g.NJ-2 {
			j0 = g.NJ - 2
		}
		if k0 > g.NK-2 {
			k0 = g.NK - 2
		}
		box := vmath.NewAABB()
		for dk := 0; dk <= 1; dk++ {
			for dj := 0; dj <= 1; dj++ {
				for di := 0; di <= 1; di++ {
					box = box.Extend(g.At(i0+di, j0+dj, k0+dk))
				}
			}
		}
		eps := box.Size().Scale(1e-4).Add(vmath.V3(1e-5, 1e-5, 1e-5))
		wide := vmath.AABB{Min: box.Min.Sub(eps), Max: box.Max.Add(eps)}
		return wide.Contains(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestNewStretchedBoxValidation(t *testing.T) {
	if _, err := NewStretchedBox(4, 4, 4, unitBox(), 0); err == nil {
		t.Error("zero exponent accepted")
	}
	if _, err := NewStretchedBox(1, 4, 4, unitBox(), 1); err == nil {
		t.Error("tiny dims accepted")
	}
	g, err := NewStretchedBox(5, 4, 4, unitBox(), 2)
	if err != nil {
		t.Fatal(err)
	}
	// Stretching clusters nodes toward low X: the first interior node
	// sits below the uniform position.
	if g.At(1, 0, 0).X >= 0.25 {
		t.Errorf("no clustering: x[1] = %v", g.At(1, 0, 0).X)
	}
}

func TestCartesianRejectsTinyDims(t *testing.T) {
	if _, err := NewCartesian(1, 4, 4, unitBox()); err == nil {
		t.Error("tiny Cartesian accepted")
	}
}

func TestMultiblockTransferExcludesOrigin(t *testing.T) {
	a, _ := NewCartesian(4, 4, 4, unitBox())
	m, err := NewMultiblock(a)
	if err != nil {
		t.Fatal(err)
	}
	// Only one block: transfer from it can never succeed.
	if _, err := m.Transfer(vmath.V3(0.5, 0.5, 0.5), 0); err == nil {
		t.Error("transfer returned the origin block")
	}
}

func TestMultiblockRejectsInvalidBlock(t *testing.T) {
	a, _ := NewCartesian(4, 4, 4, unitBox())
	a.X = a.X[:3]
	if _, err := NewMultiblock(a); err == nil {
		t.Error("corrupt block accepted")
	}
}

func TestMultiblockLocateBadGuessBlock(t *testing.T) {
	a, _ := NewCartesian(4, 4, 4, unitBox())
	m, _ := NewMultiblock(a)
	// Out-of-range guess block index must not panic.
	bc, err := m.Locate(vmath.V3(0.5, 0.5, 0.5), BlockCoord{Block: 99})
	if err != nil || bc.Block != 0 {
		t.Errorf("locate with bad guess: %v %v", bc, err)
	}
}
