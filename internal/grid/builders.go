package grid

import (
	"fmt"
	"math"

	"repro/internal/vmath"
)

// NewCartesian returns a uniform Cartesian grid spanning the box.
func NewCartesian(ni, nj, nk int, box vmath.AABB) (*Grid, error) {
	g, err := New(ni, nj, nk)
	if err != nil {
		return nil, err
	}
	size := box.Size()
	for k := 0; k < nk; k++ {
		fz := float32(k) / float32(nk-1)
		for j := 0; j < nj; j++ {
			fy := float32(j) / float32(nj-1)
			for i := 0; i < ni; i++ {
				fx := float32(i) / float32(ni-1)
				g.SetAt(i, j, k, vmath.Vec3{
					X: box.Min.X + fx*size.X,
					Y: box.Min.Y + fy*size.Y,
					Z: box.Min.Z + fz*size.Z,
				})
			}
		}
	}
	return g, nil
}

// TaperedCylinderSpec describes the O-grid around a tapered cylinder,
// modeled on the Jespersen–Levit dataset the paper visualizes: the
// cylinder axis runs along Z, its radius shrinks linearly from R0 at
// z = 0 to R1 at z = Span, and the grid wraps around it with radial
// index i, circumferential index j, and spanwise index k.
type TaperedCylinderSpec struct {
	NI, NJ, NK int     // radial, circumferential, spanwise node counts
	R0, R1     float32 // cylinder radius at z = 0 and z = Span
	Router     float32 // outer boundary radius
	Span       float32 // spanwise extent along Z
	Stretch    float32 // radial stretching exponent (>= 1; 1 = uniform)
}

// DefaultTaperedCylinder is a laptop-scale stand-in for the paper's
// 131,072-point (64x64x32) tapered cylinder grid.
func DefaultTaperedCylinder() TaperedCylinderSpec {
	return TaperedCylinderSpec{
		NI: 64, NJ: 64, NK: 32,
		R0: 1.0, R1: 0.5, Router: 12, Span: 16, Stretch: 2,
	}
}

// NewTaperedCylinder builds the O-grid described by spec.
func NewTaperedCylinder(spec TaperedCylinderSpec) (*Grid, error) {
	if spec.R0 <= 0 || spec.R1 <= 0 || spec.Router <= spec.R0 || spec.Router <= spec.R1 {
		return nil, fmt.Errorf("grid: invalid tapered cylinder radii R0=%g R1=%g Router=%g",
			spec.R0, spec.R1, spec.Router)
	}
	if spec.Stretch < 1 {
		return nil, fmt.Errorf("grid: stretch %g < 1", spec.Stretch)
	}
	g, err := New(spec.NI, spec.NJ, spec.NK)
	if err != nil {
		return nil, err
	}
	for k := 0; k < spec.NK; k++ {
		fz := float32(k) / float32(spec.NK-1)
		z := fz * spec.Span
		rin := spec.R0 + (spec.R1-spec.R0)*fz
		for j := 0; j < spec.NJ; j++ {
			// The circumferential direction does not quite close on
			// itself (the last node stops one spacing short of 2*pi),
			// matching a C-grid cut; tools never integrate across the
			// cut in grid coordinates.
			theta := 2 * math.Pi * float64(j) / float64(spec.NJ)
			s, c := math.Sincos(theta)
			for i := 0; i < spec.NI; i++ {
				fr := float32(i) / float32(spec.NI-1)
				// Stretch clusters radial nodes near the cylinder wall
				// where boundary-layer resolution matters.
				fr = float32(math.Pow(float64(fr), float64(spec.Stretch)))
				r := rin + fr*(spec.Router-rin)
				g.SetAt(i, j, k, vmath.Vec3{
					X: r * float32(c),
					Y: r * float32(s),
					Z: z,
				})
			}
		}
	}
	return g, nil
}

// NewStretchedBox returns a Cartesian-topology grid over box whose
// nodes are clustered toward the low-X face with the given exponent,
// useful for exercising non-uniform Jacobians in tests.
func NewStretchedBox(ni, nj, nk int, box vmath.AABB, exponent float64) (*Grid, error) {
	if exponent <= 0 {
		return nil, fmt.Errorf("grid: stretch exponent %g <= 0", exponent)
	}
	g, err := New(ni, nj, nk)
	if err != nil {
		return nil, err
	}
	size := box.Size()
	for k := 0; k < nk; k++ {
		fz := float32(k) / float32(nk-1)
		for j := 0; j < nj; j++ {
			fy := float32(j) / float32(nj-1)
			for i := 0; i < ni; i++ {
				fx := float32(math.Pow(float64(i)/float64(ni-1), exponent))
				g.SetAt(i, j, k, vmath.Vec3{
					X: box.Min.X + fx*size.X,
					Y: box.Min.Y + fy*size.Y,
					Z: box.Min.Z + fz*size.Z,
				})
			}
		}
	}
	return g, nil
}
