package netsim

import (
	"sync"
	"time"
)

// Clock abstracts time for fault injection and call timing so chaos
// tests can run scheduled stalls — and deterministic components can
// measure durations — without wall-clock reads. The zero plan uses
// the real clock; tests inject a ManualClock and advance it
// explicitly.
type Clock interface {
	// After returns a channel that delivers once d has elapsed.
	After(d time.Duration) <-chan time.Time
	// Now returns the current time. Implementations need only promise
	// that differences between successive Nows measure elapsed (real
	// or virtual) time; the absolute value carries no meaning.
	Now() time.Time
}

// realClock delegates to the time package.
type realClock struct{}

// After implements Clock.
func (realClock) After(d time.Duration) <-chan time.Time { return time.After(d) } //vw:allow wallclock -- this IS the injected wall clock

// Now implements Clock.
func (realClock) Now() time.Time { return time.Now() } //vw:allow wallclock -- this IS the injected wall clock

// RealClock is the wall clock.
var RealClock Clock = realClock{}

// ManualClock is a deterministic clock: time only moves when Advance
// is called. Safe for concurrent use.
type ManualClock struct {
	mu      sync.Mutex
	now     time.Duration // elapsed virtual time since construction
	waiters []*manualWaiter
}

type manualWaiter struct {
	deadline time.Duration
	ch       chan time.Time
}

// NewManualClock returns a clock frozen at virtual time zero.
func NewManualClock() *ManualClock { return &ManualClock{} }

// After implements Clock: the returned channel fires when Advance has
// moved virtual time past d from now.
func (c *ManualClock) After(d time.Duration) <-chan time.Time {
	ch := make(chan time.Time, 1)
	c.mu.Lock()
	defer c.mu.Unlock()
	if d <= 0 {
		ch <- time.Time{}
		return ch
	}
	c.waiters = append(c.waiters, &manualWaiter{deadline: c.now + d, ch: ch})
	return ch
}

// Now implements Clock: the zero time plus the advanced virtual
// elapsed time, so durations between Nows match Advance calls.
func (c *ManualClock) Now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return time.Time{}.Add(c.now)
}

// Advance moves virtual time forward, firing every waiter whose
// deadline has passed.
func (c *ManualClock) Advance(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.now += d
	kept := c.waiters[:0]
	for _, w := range c.waiters {
		if w.deadline <= c.now {
			w.ch <- time.Time{}
		} else {
			kept = append(kept, w)
		}
	}
	c.waiters = kept
}

// Elapsed returns the current virtual time.
func (c *ManualClock) Elapsed() time.Duration {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.now
}

// Waiters returns how many After channels are pending — tests spin on
// this to know a stalled operation has parked before advancing time.
func (c *ManualClock) Waiters() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.waiters)
}
