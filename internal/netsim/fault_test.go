package netsim

import (
	"errors"
	"io"
	"net"
	"os"
	"reflect"
	"testing"
	"time"
)

func TestFaultResetOnWrite(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultReset, AtOp: 1}}}
	fc, peer := FaultPipe(plan)
	defer peer.Close()
	if _, err := fc.Write([]byte("doomed")); !errors.Is(err, ErrReset) {
		t.Fatalf("write err = %v, want ErrReset", err)
	}
	// The connection is dead for every later operation.
	if _, err := fc.Write([]byte("x")); !errors.Is(err, ErrReset) {
		t.Errorf("post-reset write err = %v", err)
	}
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, ErrReset) {
		t.Errorf("post-reset read err = %v", err)
	}
	// The peer observes the closed pipe.
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Error("peer read succeeded after reset")
	}
}

func TestFaultResetCountsBothDirections(t *testing.T) {
	// Reset at total op 3: read, write, then the next write dies.
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultReset, AtOp: 3}}}
	fc, peer := FaultPipe(plan)
	defer fc.Close()
	defer peer.Close()
	go peer.Write([]byte("ab"))
	buf := make([]byte, 2)
	if _, err := io.ReadFull(fc, buf); err != nil { // op 1
		t.Fatal(err)
	}
	go io.Copy(io.Discard, peer)
	if _, err := fc.Write([]byte("ok")); err != nil { // op 2
		t.Fatal(err)
	}
	if _, err := fc.Write([]byte("boom")); !errors.Is(err, ErrReset) { // op 3
		t.Fatalf("third op err = %v, want ErrReset", err)
	}
	fired := fc.Fired()
	if len(fired) != 1 || fired[0].Kind != FaultReset || fired[0].Op != 3 {
		t.Errorf("fired = %+v", fired)
	}
}

func TestStallReadHonorsDeadline(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultStallRead, AtOp: 1}}} // stall forever
	fc, peer := FaultPipe(plan)
	defer fc.Close()
	defer peer.Close()
	fc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	start := time.Now()
	_, err := fc.Read(make([]byte, 1))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("read err = %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("deadline took %v to fire", elapsed)
	}
}

func TestStallReadReleasedByClose(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultStallRead, AtOp: 1}}}
	fc, peer := FaultPipe(plan)
	defer peer.Close()
	errc := make(chan error, 1)
	go func() {
		_, err := fc.Read(make([]byte, 1))
		errc <- err
	}()
	time.Sleep(5 * time.Millisecond)
	fc.Close()
	select {
	case err := <-errc:
		if err == nil {
			t.Error("stalled read returned nil after close")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("close did not release stalled read")
	}
}

func TestStallWithManualClock(t *testing.T) {
	clock := NewManualClock()
	plan := &FaultPlan{
		Clock:  clock,
		Faults: []Fault{{Kind: FaultStallRead, AtOp: 1, Duration: time.Hour}},
	}
	fc, peer := FaultPipe(plan)
	defer fc.Close()
	defer peer.Close()
	go peer.Write([]byte("x"))
	got := make(chan error, 1)
	go func() {
		_, err := io.ReadFull(fc, make([]byte, 1))
		got <- err
	}()
	// Wait for the read to park in the stall, then advance virtual time
	// past it: no wall-clock hour needed.
	deadline := time.Now().Add(5 * time.Second)
	for clock.Waiters() == 0 && time.Now().Before(deadline) {
		time.Sleep(100 * time.Microsecond)
	}
	if clock.Waiters() == 0 {
		t.Fatal("stall never parked on the manual clock")
	}
	clock.Advance(time.Hour)
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("read after advanced stall: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("read never completed after clock advance")
	}
}

func TestTruncateWrite(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultTruncateWrite, AtOp: 1, KeepBytes: 3}}}
	fc, peer := FaultPipe(plan)
	defer peer.Close()
	writeErr := make(chan error, 1)
	go func() {
		_, err := fc.Write([]byte("abcdef"))
		writeErr <- err
	}()
	buf := make([]byte, 3)
	if _, err := io.ReadFull(peer, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "abc" {
		t.Errorf("kept bytes = %q", buf)
	}
	if err := <-writeErr; !errors.Is(err, ErrReset) {
		t.Errorf("truncated write err = %v", err)
	}
	// The rest never arrives: the pipe is closed.
	if _, err := peer.Read(make([]byte, 1)); err == nil {
		t.Error("read past truncation succeeded")
	}
}

func TestDropWritePartition(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultDropWrite, AtOp: 2}}}
	fc, peer := FaultPipe(plan)
	defer fc.Close()
	defer peer.Close()
	go func() {
		fc.Write([]byte("aa")) // op 1: delivered
		fc.Write([]byte("bb")) // op 2: partition starts, dropped
		fc.Write([]byte("cc")) // still dropped
	}()
	buf := make([]byte, 2)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "aa" {
		t.Fatalf("first write: %q, %v", buf, err)
	}
	peer.SetReadDeadline(time.Now().Add(50 * time.Millisecond))
	if _, err := peer.Read(buf); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Errorf("partitioned bytes arrived: %q err=%v", buf, err)
	}
}

func TestDropReadPartitionKeepsWritesFlowing(t *testing.T) {
	plan := &FaultPlan{Faults: []Fault{{Kind: FaultDropRead, AtOp: 1}}}
	fc, peer := FaultPipe(plan)
	defer fc.Close()
	defer peer.Close()
	// Reads block (one-way partition)…
	fc.SetReadDeadline(time.Now().Add(30 * time.Millisecond))
	if _, err := fc.Read(make([]byte, 1)); !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("partitioned read err = %v", err)
	}
	// …while the other direction still delivers.
	go fc.Write([]byte("out"))
	buf := make([]byte, 3)
	if _, err := io.ReadFull(peer, buf); err != nil || string(buf) != "out" {
		t.Fatalf("outbound through read-partition: %q, %v", buf, err)
	}
}

func TestChaosPlansAreDeterministic(t *testing.T) {
	a := Chaos(42, 10, 100)
	b := Chaos(42, 10, 100)
	if !reflect.DeepEqual(a, b) {
		t.Errorf("same seed, different plans:\n%+v\n%+v", a.Faults, b.Faults)
	}
	c := Chaos(43, 10, 100)
	if reflect.DeepEqual(a.Faults, c.Faults) {
		t.Error("different seeds produced identical plans")
	}
	only := Chaos(7, 20, 50, FaultReset, FaultStallRead)
	for _, f := range only.Faults {
		if f.Kind != FaultReset && f.Kind != FaultStallRead {
			t.Errorf("kind filter violated: %v", f.Kind)
		}
	}
}

func TestSamePlanFiresIdentically(t *testing.T) {
	// Two runs of the same op script against the same plan fire the
	// same faults at the same ops.
	run := func() []FiredFault {
		plan := &FaultPlan{Faults: []Fault{
			{Kind: FaultStallWrite, AtOp: 2, Duration: time.Millisecond},
			{Kind: FaultReset, AtOp: 5},
		}}
		fc, peer := FaultPipe(plan)
		defer fc.Close()
		defer peer.Close()
		go io.Copy(io.Discard, peer)
		for i := 0; i < 5; i++ {
			fc.Write([]byte("op"))
		}
		return fc.Fired()
	}
	a, b := run(), run()
	if !reflect.DeepEqual(a, b) {
		t.Errorf("fired sequences differ:\n%+v\n%+v", a, b)
	}
	want := []FiredFault{{Kind: FaultStallWrite, Op: 2}, {Kind: FaultReset, Op: 5}}
	if !reflect.DeepEqual(a, want) {
		t.Errorf("fired = %+v, want %+v", a, want)
	}
}

func TestFaultConnPassThrough(t *testing.T) {
	// An empty plan must be a transparent conn.
	fc, peer := FaultPipe(&FaultPlan{})
	defer fc.Close()
	defer peer.Close()
	go peer.Write([]byte("clean"))
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil || string(buf) != "clean" {
		t.Fatalf("pass-through read: %q, %v", buf, err)
	}
}

var _ net.Conn = (*FaultConn)(nil)
