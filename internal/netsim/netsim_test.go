package netsim

import (
	"bytes"
	"io"
	"math/rand"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected loopback TCP pair.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestPassThrough(t *testing.T) {
	a, b := tcpPair(t)
	ca := Link{}.Wrap(a)
	msg := []byte("hello windtunnel")
	go func() {
		if _, err := ca.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
	_, written := ca.Stats()
	if written != int64(len(msg)) {
		t.Errorf("bytesWritten = %d, want %d", written, len(msg))
	}
}

func TestBandwidthPacing(t *testing.T) {
	a, b := tcpPair(t)
	// 1 MB/s link; send 100 KB => should take >= ~95 ms.
	ca := Link{BandwidthBytesPerSec: 1 << 20}.Wrap(a)
	payload := make([]byte, 100*1024)
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		for sent := 0; sent < len(payload); {
			n, err := ca.Write(payload[sent : sent+4096])
			if err != nil {
				t.Error(err)
				return
			}
			sent += n
		}
		done <- time.Since(start)
	}()
	if _, err := io.ReadFull(b, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	want := time.Duration(float64(len(payload)) / float64(1<<20) * float64(time.Second))
	if elapsed < want*8/10 {
		t.Errorf("100KB over 1MB/s link took %v, want >= %v", elapsed, want)
	}
	if elapsed > want*3 {
		t.Errorf("pacing too slow: %v for budget %v", elapsed, want)
	}
}

// TestBandwidthPacingProperty is the pacing contract as a property:
// for seeded random write-size mixes — tiny commands, mid-size frames,
// bulk segments — the achieved rate stays within ±10% of the link
// budget (plus a fixed scheduler allowance on the fast side).
func TestBandwidthPacingProperty(t *testing.T) {
	if testing.Short() {
		t.Skip("timing property")
	}
	const bw = int64(2 << 20) // 2 MB/s keeps each trial ~100ms
	for _, seed := range []int64{1, 42, 1992} {
		seed := seed
		t.Run(time.Duration(seed).String(), func(t *testing.T) {
			rng := rand.New(rand.NewSource(seed))
			var sizes []int
			total := 0
			for total < 200*1024 {
				// Mix three regimes the windtunnel traffic actually has.
				var n int
				switch rng.Intn(3) {
				case 0:
					n = 1 + rng.Intn(64) // command-sized
				case 1:
					n = 256 + rng.Intn(4096) // frame-sized
				default:
					n = 8*1024 + rng.Intn(32*1024) // segment-sized
				}
				sizes = append(sizes, n)
				total += n
			}
			a, b := tcpPair(t)
			ca := Link{BandwidthBytesPerSec: bw}.Wrap(a)
			go func() {
				if _, err := io.Copy(io.Discard, b); err != nil {
					return
				}
			}()
			buf := make([]byte, 64*1024)
			start := time.Now()
			for _, n := range sizes {
				for sent := 0; sent < n; {
					chunk := n - sent
					if chunk > len(buf) {
						chunk = len(buf)
					}
					m, err := ca.Write(buf[:chunk])
					if err != nil {
						t.Fatal(err)
					}
					sent += m
				}
			}
			elapsed := time.Since(start)
			ideal := time.Duration(float64(total) / float64(bw) * float64(time.Second))
			// Never more than 10% faster than the budget allows; never
			// more than 10% slower plus a fixed allowance for scheduler
			// wakeup latency across many sleeps.
			if elapsed < ideal*9/10 {
				t.Errorf("seed %d: %d bytes in %v, >10%% over budget (ideal %v)",
					seed, total, elapsed, ideal)
			}
			if slack := 150 * time.Millisecond; elapsed > ideal*11/10+slack {
				t.Errorf("seed %d: %d bytes in %v, >10%% under budget (ideal %v)",
					seed, total, elapsed, ideal)
			}
		})
	}
}

func TestUnlimitedLinkIsFast(t *testing.T) {
	a, b := tcpPair(t)
	ca := Link{}.Wrap(a)
	payload := make([]byte, 1<<20)
	start := time.Now()
	go func() {
		for sent := 0; sent < len(payload); {
			n, err := ca.Write(payload[sent:])
			if err != nil {
				return
			}
			sent += n
		}
	}()
	if _, err := io.ReadFull(b, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("unthrottled 1MB took %v", elapsed)
	}
}

func TestLatency(t *testing.T) {
	a, b := tcpPair(t)
	ca := Link{Latency: 20 * time.Millisecond}.Wrap(a)
	start := time.Now()
	go ca.Write([]byte("x"))
	if _, err := io.ReadFull(b, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestPipe(t *testing.T) {
	a, b := Pipe(Link{})
	go a.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("got %q", buf)
	}
	read, _ := b.Stats()
	if read != 4 {
		t.Errorf("reader stats = %d", read)
	}
}

func TestLinkConstantsMatchPaper(t *testing.T) {
	if UltraNetVME != 13*1024*1024 {
		t.Errorf("UltraNetVME = %d", UltraNetVME)
	}
	if UltraNetActual != 1*1024*1024 {
		t.Errorf("UltraNetActual = %d", UltraNetActual)
	}
	if UltraNetRated != 100*1024*1024 {
		t.Errorf("UltraNetRated = %d", UltraNetRated)
	}
}
