package netsim

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"
)

// tcpPair returns a connected loopback TCP pair.
func tcpPair(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	client, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { client.Close(); r.c.Close() })
	return client, r.c
}

func TestPassThrough(t *testing.T) {
	a, b := tcpPair(t)
	ca := Link{}.Wrap(a)
	msg := []byte("hello windtunnel")
	go func() {
		if _, err := ca.Write(msg); err != nil {
			t.Error(err)
		}
	}()
	buf := make([]byte, len(msg))
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf, msg) {
		t.Errorf("got %q", buf)
	}
	_, written := ca.Stats()
	if written != int64(len(msg)) {
		t.Errorf("bytesWritten = %d, want %d", written, len(msg))
	}
}

func TestBandwidthPacing(t *testing.T) {
	a, b := tcpPair(t)
	// 1 MB/s link; send 100 KB => should take >= ~95 ms.
	ca := Link{BandwidthBytesPerSec: 1 << 20}.Wrap(a)
	payload := make([]byte, 100*1024)
	done := make(chan time.Duration, 1)
	go func() {
		start := time.Now()
		for sent := 0; sent < len(payload); {
			n, err := ca.Write(payload[sent : sent+4096])
			if err != nil {
				t.Error(err)
				return
			}
			sent += n
		}
		done <- time.Since(start)
	}()
	if _, err := io.ReadFull(b, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	elapsed := <-done
	want := time.Duration(float64(len(payload)) / float64(1<<20) * float64(time.Second))
	if elapsed < want*8/10 {
		t.Errorf("100KB over 1MB/s link took %v, want >= %v", elapsed, want)
	}
	if elapsed > want*3 {
		t.Errorf("pacing too slow: %v for budget %v", elapsed, want)
	}
}

func TestUnlimitedLinkIsFast(t *testing.T) {
	a, b := tcpPair(t)
	ca := Link{}.Wrap(a)
	payload := make([]byte, 1<<20)
	start := time.Now()
	go func() {
		for sent := 0; sent < len(payload); {
			n, err := ca.Write(payload[sent:])
			if err != nil {
				return
			}
			sent += n
		}
	}()
	if _, err := io.ReadFull(b, make([]byte, len(payload))); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("unthrottled 1MB took %v", elapsed)
	}
}

func TestLatency(t *testing.T) {
	a, b := tcpPair(t)
	ca := Link{Latency: 20 * time.Millisecond}.Wrap(a)
	start := time.Now()
	go ca.Write([]byte("x"))
	if _, err := io.ReadFull(b, make([]byte, 1)); err != nil {
		t.Fatal(err)
	}
	if elapsed := time.Since(start); elapsed < 18*time.Millisecond {
		t.Errorf("latency not applied: %v", elapsed)
	}
}

func TestPipe(t *testing.T) {
	a, b := Pipe(Link{})
	go a.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(b, buf); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "ping" {
		t.Errorf("got %q", buf)
	}
	read, _ := b.Stats()
	if read != 4 {
		t.Errorf("reader stats = %d", read)
	}
}

func TestLinkConstantsMatchPaper(t *testing.T) {
	if UltraNetVME != 13*1024*1024 {
		t.Errorf("UltraNetVME = %d", UltraNetVME)
	}
	if UltraNetActual != 1*1024*1024 {
		t.Errorf("UltraNetActual = %d", UltraNetActual)
	}
	if UltraNetRated != 100*1024*1024 {
		t.Errorf("UltraNetRated = %d", UltraNetRated)
	}
}
