package netsim

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"os"
	"sync"
	"time"
)

// Fault injection: the paper's UltraNet delivered 1% of its rated
// bandwidth because of software bugs (§5.1); a distributed windtunnel
// has to assume the link will stall, reset, and partition underneath
// it. A FaultPlan scripts those failures deterministically — each
// fault fires when a wrapped connection's operation counter reaches a
// scheduled index, never on a wall-clock timer — so chaos tests
// reproduce bit-for-bit from a seed.

// FaultKind selects a failure mode.
type FaultKind uint8

const (
	// FaultStallRead blocks the triggering Read for Duration (or until
	// the connection closes when Duration is zero).
	FaultStallRead FaultKind = iota + 1
	// FaultStallWrite blocks the triggering Write the same way.
	FaultStallWrite
	// FaultReset closes the connection mid-operation; both sides see a
	// terminal error, as with a TCP RST.
	FaultReset
	// FaultTruncateWrite lets the first KeepBytes of the triggering
	// Write through, then resets the connection — a frame cut off on
	// the wire.
	FaultTruncateWrite
	// FaultDropRead starts a one-way partition: inbound bytes stop
	// arriving (reads block) while writes still flow.
	FaultDropRead
	// FaultDropWrite starts the opposite one-way partition: writes
	// claim success but vanish, while reads still flow.
	FaultDropWrite
)

// String implements fmt.Stringer.
func (k FaultKind) String() string {
	switch k {
	case FaultStallRead:
		return "stall-read"
	case FaultStallWrite:
		return "stall-write"
	case FaultReset:
		return "reset"
	case FaultTruncateWrite:
		return "truncate-write"
	case FaultDropRead:
		return "drop-read"
	case FaultDropWrite:
		return "drop-write"
	}
	return fmt.Sprintf("fault(%d)", uint8(k))
}

// Fault is one scheduled failure. AtOp is a 1-based operation index in
// the fault's natural counter: read faults count Read calls, write
// faults count Write calls, and FaultReset counts both combined. Each
// fault fires at most once.
type Fault struct {
	Kind FaultKind
	AtOp int
	// Duration bounds a stall; zero stalls until the connection closes.
	Duration time.Duration
	// KeepBytes is how much of the triggering write FaultTruncateWrite
	// lets through.
	KeepBytes int
}

// ErrReset is the terminal error surfaced by FaultReset and
// FaultTruncateWrite, and by any operation after one fired.
var ErrReset = errors.New("netsim: connection reset by fault plan")

// errClosed is returned when a blocked operation is released by Close.
var errClosed = errors.New("netsim: connection closed during injected fault")

// FaultPlan is a deterministic schedule of failures for one
// connection. The zero value injects nothing.
type FaultPlan struct {
	Faults []Fault
	// Clock times stalls; nil uses the wall clock. Chaos tests inject a
	// ManualClock so stalls resolve without real sleeps.
	Clock Clock
}

// clock returns the effective clock.
func (p *FaultPlan) clock() Clock {
	if p == nil || p.Clock == nil {
		return RealClock
	}
	return p.Clock
}

// FiredFault records one fault that actually triggered, for
// determinism assertions.
type FiredFault struct {
	Kind FaultKind
	Op   int // value of the fault's counter when it fired
}

// FaultConn is a net.Conn executing a FaultPlan. It honors read/write
// deadlines even while a fault is blocking the operation, so deadline-
// based resilience (server idle reaping, client call timeouts) still
// observes stalled links.
type FaultConn struct {
	net.Conn
	plan *FaultPlan

	mu        sync.Mutex
	readOps   int
	writeOps  int
	totalOps  int
	consumed  []bool
	reset     bool
	dropRead  bool
	dropWrite bool
	closed    bool
	rdeadline time.Time
	wdeadline time.Time
	fired     []FiredFault

	done chan struct{}
}

// Wrap applies the plan to an established connection. A nil plan is a
// valid empty plan.
func (p *FaultPlan) Wrap(c net.Conn) *FaultConn {
	if p == nil {
		p = &FaultPlan{}
	}
	return &FaultConn{
		Conn:     c,
		plan:     p,
		consumed: make([]bool, len(p.Faults)),
		done:     make(chan struct{}),
	}
}

// FaultPipe returns an in-memory pair with the plan applied to the
// first end; the second end is the well-behaved peer.
func FaultPipe(p *FaultPlan) (*FaultConn, net.Conn) {
	a, b := net.Pipe()
	return p.Wrap(a), b
}

// Fired returns the faults that have triggered so far, in order.
func (c *FaultConn) Fired() []FiredFault {
	c.mu.Lock()
	defer c.mu.Unlock()
	return append([]FiredFault(nil), c.fired...)
}

// next advances the counters for one operation of the given direction
// and returns the fault scheduled for it, if any.
func (c *FaultConn) next(isRead bool) (Fault, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.totalOps++
	var dirOps int
	if isRead {
		c.readOps++
		dirOps = c.readOps
	} else {
		c.writeOps++
		dirOps = c.writeOps
	}
	for i, f := range c.plan.Faults {
		if c.consumed[i] {
			continue
		}
		readFault := f.Kind == FaultStallRead || f.Kind == FaultDropRead
		writeFault := f.Kind == FaultStallWrite || f.Kind == FaultDropWrite ||
			f.Kind == FaultTruncateWrite
		var hit bool
		switch {
		case f.Kind == FaultReset:
			hit = f.AtOp == c.totalOps
		case readFault:
			hit = isRead && f.AtOp == dirOps
		case writeFault:
			hit = !isRead && f.AtOp == dirOps
		}
		if hit {
			c.consumed[i] = true
			op := dirOps
			if f.Kind == FaultReset {
				op = c.totalOps
			}
			c.fired = append(c.fired, FiredFault{Kind: f.Kind, Op: op})
			return f, true
		}
	}
	return Fault{}, false
}

// block waits out a stall (d == 0 means until close), still honoring
// the operation deadline. Returns nil when the stall elapsed and the
// operation should proceed.
func (c *FaultConn) block(d time.Duration, deadline time.Time) error {
	var elapsed <-chan time.Time
	if d > 0 {
		elapsed = c.plan.clock().After(d)
	}
	var dl <-chan time.Time
	if !deadline.IsZero() {
		wait := time.Until(deadline) //vw:allow wallclock -- net.Conn deadlines are absolute wall-clock times
		if wait <= 0 {
			return os.ErrDeadlineExceeded
		}
		dl = time.After(wait) //vw:allow wallclock -- net.Conn deadlines are absolute wall-clock times
	}
	select {
	case <-elapsed:
		return nil
	case <-dl:
		return os.ErrDeadlineExceeded
	case <-c.done:
		return errClosed
	}
}

// doReset tears the connection down as a fault outcome.
func (c *FaultConn) doReset() {
	c.mu.Lock()
	c.reset = true
	closed := c.closed
	c.closed = true
	c.mu.Unlock()
	if !closed {
		close(c.done)
		c.Conn.Close()
	}
}

// state snapshots the flags an operation needs.
func (c *FaultConn) state() (reset, dropRead, dropWrite bool, rdl, wdl time.Time) {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reset, c.dropRead, c.dropWrite, c.rdeadline, c.wdeadline
}

// Read implements net.Conn.
func (c *FaultConn) Read(p []byte) (int, error) {
	f, hit := c.next(true)
	if hit {
		switch f.Kind {
		case FaultStallRead:
			if err := c.block(f.Duration, c.readDeadline()); err != nil {
				return 0, err
			}
		case FaultReset:
			c.doReset()
			return 0, ErrReset
		case FaultDropRead:
			c.mu.Lock()
			c.dropRead = true
			c.mu.Unlock()
		}
	}
	reset, dropRead, _, rdl, _ := c.state()
	if reset {
		return 0, ErrReset
	}
	if dropRead {
		// Partitioned inbound: bytes never arrive. Block until the
		// deadline or close, like a peer that went silent.
		if err := c.block(0, rdl); err != nil {
			return 0, err
		}
		return 0, errClosed
	}
	return c.Conn.Read(p)
}

// Write implements net.Conn.
func (c *FaultConn) Write(p []byte) (int, error) {
	f, hit := c.next(false)
	if hit {
		switch f.Kind {
		case FaultStallWrite:
			if err := c.block(f.Duration, c.writeDeadline()); err != nil {
				return 0, err
			}
		case FaultReset:
			c.doReset()
			return 0, ErrReset
		case FaultTruncateWrite:
			keep := f.KeepBytes
			if keep > len(p) {
				keep = len(p)
			}
			n := 0
			if keep > 0 {
				n, _ = c.Conn.Write(p[:keep])
			}
			c.doReset()
			return n, ErrReset
		case FaultDropWrite:
			c.mu.Lock()
			c.dropWrite = true
			c.mu.Unlock()
		}
	}
	reset, _, dropWrite, _, _ := c.state()
	if reset {
		return 0, ErrReset
	}
	if dropWrite {
		// Partitioned outbound: the write "succeeds" but the bytes
		// vanish on the wire.
		return len(p), nil
	}
	return c.Conn.Write(p)
}

func (c *FaultConn) readDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rdeadline
}

func (c *FaultConn) writeDeadline() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.wdeadline
}

// SetDeadline implements net.Conn.
func (c *FaultConn) SetDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline, c.wdeadline = t, t
	c.mu.Unlock()
	return c.Conn.SetDeadline(t)
}

// SetReadDeadline implements net.Conn.
func (c *FaultConn) SetReadDeadline(t time.Time) error {
	c.mu.Lock()
	c.rdeadline = t
	c.mu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

// SetWriteDeadline implements net.Conn.
func (c *FaultConn) SetWriteDeadline(t time.Time) error {
	c.mu.Lock()
	c.wdeadline = t
	c.mu.Unlock()
	return c.Conn.SetWriteDeadline(t)
}

// Close implements net.Conn, releasing any operation blocked in a
// stall or partition.
func (c *FaultConn) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	c.mu.Unlock()
	close(c.done)
	return c.Conn.Close()
}

// Chaos builds a reproducible random plan: n faults drawn from seed,
// scheduled across the first span operations. kinds restricts the
// failure modes; empty means all of them. Two calls with equal
// arguments return identical plans.
func Chaos(seed int64, n, span int, kinds ...FaultKind) *FaultPlan {
	if len(kinds) == 0 {
		kinds = []FaultKind{
			FaultStallRead, FaultStallWrite, FaultReset,
			FaultTruncateWrite, FaultDropRead, FaultDropWrite,
		}
	}
	rng := rand.New(rand.NewSource(seed))
	plan := &FaultPlan{}
	for i := 0; i < n; i++ {
		k := kinds[rng.Intn(len(kinds))]
		f := Fault{Kind: k, AtOp: 1 + rng.Intn(span)}
		switch k {
		case FaultStallRead, FaultStallWrite:
			f.Duration = time.Duration(1+rng.Intn(50)) * time.Millisecond
		case FaultTruncateWrite:
			f.KeepBytes = rng.Intn(16)
		}
		plan.Faults = append(plan.Faults, f)
	}
	return plan
}
