// Package netsim wraps net.Conn with bandwidth pacing, latency
// injection, and byte metering. The paper's UltraNet was rated at
// 100 MB/s, delivered 13 MB/s through the VME interface, and actually
// achieved 1 MB/s at the time of writing; reproducing Table 1 requires
// running the same transfers through links with those budgets.
//
//vw:deterministic
package netsim

import (
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Well-known link budgets from §5.1 of the paper, in bytes/second.
const (
	// UltraNetRated is the network's 100 megabyte/s rating.
	UltraNetRated int64 = 100 << 20
	// UltraNetVME is the 13 MB/s delivered through the workstation's
	// VME interface.
	UltraNetVME int64 = 13 << 20
	// UltraNetActual is the 1 MB/s achieved "as of this writing" due
	// to software bugs and the missing Convex HIPPI interface.
	UltraNetActual int64 = 1 << 20
)

// Link describes a simulated network link.
type Link struct {
	// BandwidthBytesPerSec paces writes; zero means unlimited.
	BandwidthBytesPerSec int64
	// Latency is added once per Write call, approximating per-message
	// propagation delay.
	Latency time.Duration
}

// Conn is a net.Conn with pacing and metering. Reads pass through
// untouched (the peer's writes are already paced); writes sleep enough
// that the cumulative rate never exceeds the link bandwidth.
type Conn struct {
	net.Conn
	link Link

	mu      sync.Mutex
	debt    time.Duration // accumulated pacing debt not yet slept
	lastTxn time.Time

	bytesRead    atomic.Int64
	bytesWritten atomic.Int64
}

// Wrap wraps c with the link's behavior.
func (l Link) Wrap(c net.Conn) *Conn {
	return &Conn{Conn: c, link: l}
}

// Read implements net.Conn.
func (c *Conn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	c.bytesRead.Add(int64(n))
	return n, err
}

// Write implements net.Conn with pacing: after the underlying write,
// sleep so the long-run rate matches the configured bandwidth.
func (c *Conn) Write(p []byte) (int, error) {
	if c.link.Latency > 0 {
		time.Sleep(c.link.Latency) //vw:allow wallclock -- link pacing burns real time by design
	}
	n, err := c.Conn.Write(p)
	c.bytesWritten.Add(int64(n))
	if bw := c.link.BandwidthBytesPerSec; bw > 0 && n > 0 {
		cost := time.Duration(float64(n) / float64(bw) * float64(time.Second))
		c.mu.Lock()
		now := time.Now() //vw:allow wallclock -- bandwidth debt is paid in real time by design
		if !c.lastTxn.IsZero() {
			// Credit real time that passed since the last write.
			c.debt -= now.Sub(c.lastTxn)
			if c.debt < 0 {
				c.debt = 0
			}
		}
		c.debt += cost
		sleep := c.debt
		c.lastTxn = now.Add(sleep)
		c.mu.Unlock()
		if sleep > 0 {
			time.Sleep(sleep) //vw:allow wallclock -- bandwidth debt is paid in real time by design
			c.mu.Lock()
			c.debt -= sleep
			if c.debt < 0 {
				c.debt = 0
			}
			c.mu.Unlock()
		}
	}
	return n, err
}

// Stats returns cumulative bytes read and written through this side of
// the link.
func (c *Conn) Stats() (bytesRead, bytesWritten int64) {
	return c.bytesRead.Load(), c.bytesWritten.Load()
}

// Pipe returns an in-memory connected pair, both ends wrapped with the
// link. Useful for deterministic tests without sockets.
func Pipe(l Link) (*Conn, *Conn) {
	a, b := net.Pipe()
	return l.Wrap(a), l.Wrap(b)
}
