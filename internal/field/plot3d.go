package field

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"repro/internal/grid"
)

// PLOT3D interop. The paper's datasets were NASA CFD solutions, which
// lived in PLOT3D files: an XYZ grid file plus per-timestep function
// files. These readers/writers use the single-block "C binary" (no
// Fortran record markers) whole format, little-endian, single
// precision:
//
//	grid file:      ni nj nk (int32), then x[], y[], z[] (float32)
//	function file:  ni nj nk nvar (int32), then var0[], var1[], ...
//
// Velocity timesteps are 3-variable function files (u, v, w).

// WritePLOT3DGrid writes g as a PLOT3D XYZ file.
func WritePLOT3DGrid(w io.Writer, g *grid.Grid) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := [3]int32{int32(g.NI), int32(g.NJ), int32(g.NK)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("field: plot3d grid header: %w", err)
	}
	for _, comp := range [][]float32{g.X, g.Y, g.Z} {
		if err := writeFloats(bw, comp); err != nil {
			return fmt.Errorf("field: plot3d grid payload: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPLOT3DGrid reads a PLOT3D XYZ file.
func ReadPLOT3DGrid(r io.Reader) (*grid.Grid, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [3]int32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("field: plot3d grid header: %w", err)
	}
	ni, nj, nk := int(hdr[0]), int(hdr[1]), int(hdr[2])
	if err := checkDims(ni, nj, nk); err != nil {
		return nil, err
	}
	g, err := grid.New(ni, nj, nk)
	if err != nil {
		return nil, err
	}
	for _, comp := range [][]float32{g.X, g.Y, g.Z} {
		if err := readFloats(br, comp); err != nil {
			return nil, fmt.Errorf("field: plot3d grid payload: %w", err)
		}
	}
	return g, nil
}

// WritePLOT3DFunction writes f's velocity as a 3-variable PLOT3D
// function file.
func WritePLOT3DFunction(w io.Writer, f *Field) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := [4]int32{int32(f.NI), int32(f.NJ), int32(f.NK), 3}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("field: plot3d function header: %w", err)
	}
	for _, comp := range [][]float32{f.U, f.V, f.W} {
		if err := writeFloats(bw, comp); err != nil {
			return fmt.Errorf("field: plot3d function payload: %w", err)
		}
	}
	return bw.Flush()
}

// ReadPLOT3DFunction reads a 3-variable PLOT3D function file as a
// physical-coordinate velocity field.
func ReadPLOT3DFunction(r io.Reader) (*Field, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]int32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("field: plot3d function header: %w", err)
	}
	ni, nj, nk, nvar := int(hdr[0]), int(hdr[1]), int(hdr[2]), int(hdr[3])
	if err := checkDims(ni, nj, nk); err != nil {
		return nil, err
	}
	if nvar != 3 {
		return nil, fmt.Errorf("field: plot3d function has %d variables, want 3 (u, v, w)", nvar)
	}
	f := NewField(ni, nj, nk, Physical)
	for _, comp := range [][]float32{f.U, f.V, f.W} {
		if err := readFloats(br, comp); err != nil {
			return nil, fmt.Errorf("field: plot3d function payload: %w", err)
		}
	}
	return f, nil
}
