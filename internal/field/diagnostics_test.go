package field

import (
	"math"
	"testing"

	"repro/internal/grid"
	"repro/internal/vmath"
)

// fineGrid is a Cartesian grid over [0, 2pi]^3 fine enough for
// second-order gradients.
func fineGrid(t testing.TB, n int) *grid.Grid {
	t.Helper()
	g, err := grid.NewCartesian(n, n, n, vmath.AABB{
		Min: vmath.V3(0, 0, 0),
		Max: vmath.V3(2*math.Pi, 2*math.Pi, 2*math.Pi),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func sampleAnalytic(g *grid.Grid, f func(p vmath.Vec3) vmath.Vec3) *Field {
	out := NewField(g.NI, g.NJ, g.NK, Physical)
	for k := 0; k < g.NK; k++ {
		for j := 0; j < g.NJ; j++ {
			for i := 0; i < g.NI; i++ {
				out.SetAt(i, j, k, f(g.At(i, j, k)))
			}
		}
	}
	return out
}

func TestVorticityUniformFlowIsZero(t *testing.T) {
	g := fineGrid(t, 9)
	f := sampleAnalytic(g, func(vmath.Vec3) vmath.Vec3 { return vmath.V3(3, -1, 2) })
	w, err := Vorticity(g, f)
	if err != nil {
		t.Fatal(err)
	}
	for i := range w.U {
		v := vmath.Vec3{X: w.U[i], Y: w.V[i], Z: w.W[i]}
		if v.Len() > 1e-4 {
			t.Fatalf("uniform flow vorticity %v at node %d", v, i)
		}
	}
}

func TestVorticitySolidRotation(t *testing.T) {
	// Solid-body rotation omega about Z: u = omega x r has curl
	// (0, 0, 2 omega) everywhere.
	g := fineGrid(t, 9)
	const omega = 0.7
	center := vmath.V3(math.Pi, math.Pi, math.Pi)
	f := sampleAnalytic(g, func(p vmath.Vec3) vmath.Vec3 {
		d := p.Sub(center)
		return vmath.V3(-omega*d.Y, omega*d.X, 0)
	})
	w, err := Vorticity(g, f)
	if err != nil {
		t.Fatal(err)
	}
	// Check interior nodes (boundaries use one-sided differences but
	// the field is linear, so they are exact too).
	got := w.At(4, 4, 4)
	if !got.ApproxEqual(vmath.V3(0, 0, 2*omega), 1e-3) {
		t.Errorf("solid rotation curl = %v, want (0,0,%v)", got, 2*omega)
	}
}

func TestVorticityBeltramiProperty(t *testing.T) {
	// The ABC flow is a Beltrami field: curl(u) = u exactly. Check the
	// numerical curl approaches the velocity on a fine grid, interior
	// nodes only (one-sided boundary stencils are first order).
	const n = 33
	g := fineGrid(t, n)
	abc := func(p vmath.Vec3) vmath.Vec3 {
		return vmath.Vec3{
			X: float32(math.Sin(float64(p.Z)) + math.Cos(float64(p.Y))),
			Y: float32(math.Sin(float64(p.X)) + math.Cos(float64(p.Z))),
			Z: float32(math.Sin(float64(p.Y)) + math.Cos(float64(p.X))),
		}
	}
	f := sampleAnalytic(g, abc)
	w, err := Vorticity(g, f)
	if err != nil {
		t.Fatal(err)
	}
	var maxErr float32
	for k := 2; k < n-2; k++ {
		for j := 2; j < n-2; j++ {
			for i := 2; i < n-2; i++ {
				diff := w.At(i, j, k).Sub(f.At(i, j, k)).Len()
				if diff > maxErr {
					maxErr = diff
				}
			}
		}
	}
	// Second-order central differences at h = 2pi/32: truncation
	// error ~ h^2/6 * |u'''| ~ 0.0064; allow some slack.
	if maxErr > 0.03 {
		t.Errorf("Beltrami curl error %v, want < 0.03", maxErr)
	}
}

func TestVorticityValidation(t *testing.T) {
	g := fineGrid(t, 5)
	gc := NewField(5, 5, 5, GridCoords)
	if _, err := Vorticity(g, gc); err == nil {
		t.Error("grid-coordinate field accepted")
	}
	small := NewField(3, 3, 3, Physical)
	if _, err := Vorticity(g, small); err == nil {
		t.Error("mismatched dims accepted")
	}
}

func TestDivergenceStatsSolenoidalVsRadial(t *testing.T) {
	g := fineGrid(t, 17)
	// Solenoidal: solid rotation has zero divergence.
	center := vmath.V3(math.Pi, math.Pi, math.Pi)
	sol := sampleAnalytic(g, func(p vmath.Vec3) vmath.Vec3 {
		d := p.Sub(center)
		return vmath.V3(-d.Y, d.X, 0)
	})
	meanSol, _, err := DivergenceStats(g, sol)
	if err != nil {
		t.Fatal(err)
	}
	// Radial: div(r) = 3 everywhere.
	rad := sampleAnalytic(g, func(p vmath.Vec3) vmath.Vec3 {
		return p.Sub(center)
	})
	meanRad, maxRad, err := DivergenceStats(g, rad)
	if err != nil {
		t.Fatal(err)
	}
	if meanSol > 1e-3 {
		t.Errorf("solenoidal mean divergence %v", meanSol)
	}
	if math.Abs(meanRad-3) > 1e-3 || math.Abs(maxRad-3) > 1e-3 {
		t.Errorf("radial divergence mean=%v max=%v, want 3", meanRad, maxRad)
	}
}

func TestVorticityOnCurvilinearGrid(t *testing.T) {
	// Solid rotation sampled on the tapered-cylinder O-grid must still
	// produce curl ~ (0, 0, 2 omega) — the Jacobian chain rule handles
	// the curvilinear coordinates.
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 24, NJ: 48, NK: 8, R0: 1, R1: 0.5, Router: 10, Span: 12, Stretch: 1,
	})
	if err != nil {
		t.Fatal(err)
	}
	const omega = 0.5
	f := sampleAnalytic(g, func(p vmath.Vec3) vmath.Vec3 {
		return vmath.V3(-omega*p.Y, omega*p.X, 0)
	})
	w, err := Vorticity(g, f)
	if err != nil {
		t.Fatal(err)
	}
	// Sample interior nodes away from the periodic cut.
	for _, node := range [][3]int{{12, 10, 4}, {6, 20, 3}, {18, 30, 5}} {
		got := w.At(node[0], node[1], node[2])
		if !got.ApproxEqual(vmath.V3(0, 0, 2*omega), 0.05) {
			t.Errorf("node %v curl = %v, want (0,0,%v)", node, got, 2*omega)
		}
	}
}

// TestQCriterionShearVsRotation: Q is negative (strain-dominated) in
// pure shear, positive (rotation-dominated) inside solid-body
// rotation — the separation the vortex-core tool's threshold relies
// on.
func TestQCriterionShearVsRotation(t *testing.T) {
	g := fineGrid(t, 17)
	c := float32(math.Pi) // domain center

	// Pure shear u = (y, 0, 0): S and Omega have equal norms minus the
	// diagonal, Q = -1/4 ((du/dy)^2 ... ) < 0 at interior nodes:
	// expanding, Q = -du/dy * dv/dx = 0 - actually Q = -gu.Y*gv.X = 0;
	// for u=(y,0,0): Q = -1/2(0) - (1*0+0+0) = 0. Use a strain field
	// u=(x,-y,0) instead: Q = -1/2(1+1) = -1.
	strain := sampleAnalytic(g, func(p vmath.Vec3) vmath.Vec3 {
		return vmath.V3(p.X-c, -(p.Y - c), 0)
	})
	qs, err := QCriterion(g, strain)
	if err != nil {
		t.Fatal(err)
	}
	// Solid rotation u = (-y, x, 0): Q = -gu.Y*gv.X = -(-1)(1) = 1 > 0.
	rot := sampleAnalytic(g, func(p vmath.Vec3) vmath.Vec3 {
		return vmath.V3(-(p.Y - c), p.X-c, 0)
	})
	qr, err := QCriterion(g, rot)
	if err != nil {
		t.Fatal(err)
	}
	mid := g.Index(8, 8, 8)
	if qs[mid] >= 0 {
		t.Errorf("pure strain Q = %v at center, want < 0", qs[mid])
	}
	if qr[mid] <= 0 {
		t.Errorf("solid rotation Q = %v at center, want > 0", qr[mid])
	}
	if math.Abs(float64(qs[mid])+1) > 0.05 {
		t.Errorf("strain Q = %v, want -1", qs[mid])
	}
	if math.Abs(float64(qr[mid])-1) > 0.05 {
		t.Errorf("rotation Q = %v, want 1", qr[mid])
	}

	// Coordinate-system guard: grid-coordinate input is rejected.
	gc := NewField(g.NI, g.NJ, g.NK, GridCoords)
	if _, err := QCriterion(g, gc); err == nil {
		t.Error("grid-coordinate field accepted")
	}
}

// TestToPhysicalVelocityCartesianScale: on a Cartesian grid the
// Jacobian is the (constant) cell size, so grid-coordinate velocities
// scale by spacing; converting twice is rejected.
func TestToPhysicalVelocityCartesianScale(t *testing.T) {
	g, err := grid.NewCartesian(5, 5, 5, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(8, 4, 2),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewField(5, 5, 5, GridCoords)
	for i := range f.U {
		f.U[i], f.V[i], f.W[i] = 1, 1, 1
	}
	p, err := ToPhysicalVelocity(f, g)
	if err != nil {
		t.Fatal(err)
	}
	// Spacing: (8,4,2)/(5-1) = (2,1,0.5) per grid unit.
	got := p.At(2, 2, 2)
	if got != vmath.V3(2, 1, 0.5) {
		t.Errorf("physical velocity %v, want (2 1 0.5)", got)
	}
	if p.Coords != Physical {
		t.Errorf("coords = %v", p.Coords)
	}
	if _, err := ToPhysicalVelocity(p, g); err == nil {
		t.Error("double conversion accepted")
	}
}
