package field

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"repro/internal/grid"
)

// Binary formats. Both are little-endian, mirroring the paper's note
// that the Convex was run with IEEE floating point (a compile-time
// option) specifically so the SGI and the Convex could share data
// without conversion.
//
// Timestep file:
//	magic  uint32 = 0x56575431 ("VWT1")
//	ni, nj, nk uint32
//	coords uint8 (0 = physical, 1 = grid)
//	pad    [3]uint8
//	u, v, w each ni*nj*nk float32
//
// Grid file:
//	magic  uint32 = 0x56575447 ("VWTG")
//	ni, nj, nk uint32
//	x, y, z each ni*nj*nk float32

const (
	fieldMagic = 0x56575431
	gridMagic  = 0x56575447
	// maxDim guards against allocating absurd buffers from a corrupt
	// header before reading the payload.
	maxDim = 1 << 14
)

// WriteField writes f in timestep binary format.
func WriteField(w io.Writer, f *Field) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := [4]uint32{fieldMagic, uint32(f.NI), uint32(f.NJ), uint32(f.NK)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("field: write header: %w", err)
	}
	flags := [4]uint8{uint8(f.Coords)}
	if _, err := bw.Write(flags[:]); err != nil {
		return fmt.Errorf("field: write flags: %w", err)
	}
	for _, comp := range [][]float32{f.U, f.V, f.W} {
		if err := writeFloats(bw, comp); err != nil {
			return fmt.Errorf("field: write payload: %w", err)
		}
	}
	return bw.Flush()
}

// ReadField reads a timestep written by WriteField.
func ReadField(r io.Reader) (*Field, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("field: read header: %w", err)
	}
	if hdr[0] != fieldMagic {
		return nil, fmt.Errorf("field: bad magic %#x", hdr[0])
	}
	ni, nj, nk := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if err := checkDims(ni, nj, nk); err != nil {
		return nil, err
	}
	var flags [4]uint8
	if _, err := io.ReadFull(br, flags[:]); err != nil {
		return nil, fmt.Errorf("field: read flags: %w", err)
	}
	coords := CoordSystem(flags[0])
	if coords != Physical && coords != GridCoords {
		return nil, fmt.Errorf("field: unknown coordinate system %d", flags[0])
	}
	f := NewField(ni, nj, nk, coords)
	for _, comp := range [][]float32{f.U, f.V, f.W} {
		if err := readFloats(br, comp); err != nil {
			return nil, fmt.Errorf("field: read payload: %w", err)
		}
	}
	return f, nil
}

// WriteGrid writes g in grid binary format.
func WriteGrid(w io.Writer, g *grid.Grid) error {
	bw := bufio.NewWriterSize(w, 1<<16)
	hdr := [4]uint32{gridMagic, uint32(g.NI), uint32(g.NJ), uint32(g.NK)}
	if err := binary.Write(bw, binary.LittleEndian, hdr[:]); err != nil {
		return fmt.Errorf("field: write grid header: %w", err)
	}
	for _, comp := range [][]float32{g.X, g.Y, g.Z} {
		if err := writeFloats(bw, comp); err != nil {
			return fmt.Errorf("field: write grid payload: %w", err)
		}
	}
	return bw.Flush()
}

// ReadGrid reads a grid written by WriteGrid.
func ReadGrid(r io.Reader) (*grid.Grid, error) {
	br := bufio.NewReaderSize(r, 1<<16)
	var hdr [4]uint32
	if err := binary.Read(br, binary.LittleEndian, hdr[:]); err != nil {
		return nil, fmt.Errorf("field: read grid header: %w", err)
	}
	if hdr[0] != gridMagic {
		return nil, fmt.Errorf("field: bad grid magic %#x", hdr[0])
	}
	ni, nj, nk := int(hdr[1]), int(hdr[2]), int(hdr[3])
	if err := checkDims(ni, nj, nk); err != nil {
		return nil, err
	}
	g, err := grid.New(ni, nj, nk)
	if err != nil {
		return nil, err
	}
	for _, comp := range [][]float32{g.X, g.Y, g.Z} {
		if err := readFloats(br, comp); err != nil {
			return nil, fmt.Errorf("field: read grid payload: %w", err)
		}
	}
	return g, nil
}

func checkDims(ni, nj, nk int) error {
	if ni < 2 || nj < 2 || nk < 2 || ni > maxDim || nj > maxDim || nk > maxDim {
		return fmt.Errorf("field: unreasonable dimensions %dx%dx%d", ni, nj, nk)
	}
	return nil
}

// writeFloats streams a float32 slice little-endian without the
// reflection overhead of binary.Write on large slices.
func writeFloats(w io.Writer, a []float32) error {
	var buf [4096]byte
	for len(a) > 0 {
		n := len(buf) / 4
		if n > len(a) {
			n = len(a)
		}
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(a[i]))
		}
		if _, err := w.Write(buf[:4*n]); err != nil {
			return err
		}
		a = a[n:]
	}
	return nil
}

func readFloats(r io.Reader, a []float32) error {
	var buf [4096]byte
	for len(a) > 0 {
		n := len(buf) / 4
		if n > len(a) {
			n = len(a)
		}
		if _, err := io.ReadFull(r, buf[:4*n]); err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			a[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
		a = a[n:]
	}
	return nil
}
