package field

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/grid"
	"repro/internal/vmath"
)

func testGrid(t testing.TB) *grid.Grid {
	t.Helper()
	g, err := grid.NewCartesian(8, 8, 8, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(7, 7, 7),
	})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func randomField(ni, nj, nk int, seed int64) *Field {
	rng := rand.New(rand.NewSource(seed))
	f := NewField(ni, nj, nk, Physical)
	for i := range f.U {
		f.U[i] = rng.Float32()*4 - 2
		f.V[i] = rng.Float32()*4 - 2
		f.W[i] = rng.Float32()*4 - 2
	}
	return f
}

func TestFieldAtSetAt(t *testing.T) {
	f := NewField(4, 5, 6, Physical)
	want := vmath.V3(1, -2, 3)
	f.SetAt(2, 3, 4, want)
	if got := f.At(2, 3, 4); got != want {
		t.Errorf("At = %v, want %v", got, want)
	}
	if got := f.At(0, 0, 0); got != (vmath.Vec3{}) {
		t.Errorf("unset node = %v, want zero", got)
	}
}

func TestFieldSizeBytes(t *testing.T) {
	// Table 2 row 1: the 131,072-point tapered cylinder timestep is
	// 1,572,864 bytes.
	f := NewField(64, 64, 32, Physical)
	if got := f.SizeBytes(); got != 1572864 {
		t.Errorf("SizeBytes = %d, want 1572864", got)
	}
}

func TestFieldSampleAtNodes(t *testing.T) {
	g := testGrid(t)
	f := randomField(8, 8, 8, 1)
	for _, node := range [][3]int{{0, 0, 0}, {3, 4, 5}, {7, 7, 7}} {
		gc := vmath.V3(float32(node[0]), float32(node[1]), float32(node[2]))
		got := f.Sample(g, gc)
		want := f.At(node[0], node[1], node[2])
		if !got.ApproxEqual(want, 1e-5) {
			t.Errorf("Sample(%v) = %v, want %v", gc, got, want)
		}
	}
}

func TestFieldValidate(t *testing.T) {
	f := randomField(4, 4, 4, 2)
	if err := f.Validate(); err != nil {
		t.Errorf("valid field rejected: %v", err)
	}
	f.V[7] = float32(math.Inf(-1))
	if err := f.Validate(); err == nil {
		t.Error("Validate accepted Inf")
	}
	f2 := randomField(4, 4, 4, 3)
	f2.W = f2.W[:5]
	if err := f2.Validate(); err == nil {
		t.Error("Validate accepted short array")
	}
}

func TestFieldClone(t *testing.T) {
	f := randomField(4, 4, 4, 4)
	c := f.Clone()
	c.U[0] = 99
	if f.U[0] == 99 {
		t.Error("Clone shares storage with original")
	}
	if c.Coords != f.Coords || c.NI != f.NI {
		t.Error("Clone lost metadata")
	}
}

func TestMaxSpeed(t *testing.T) {
	f := NewField(3, 3, 3, Physical)
	f.SetAt(1, 1, 1, vmath.V3(3, 4, 0)) // |v| = 5
	if got := f.MaxSpeed(); absf(got-5) > 1e-5 {
		t.Errorf("MaxSpeed = %v, want 5", got)
	}
	if got := NewField(2, 2, 2, Physical).MaxSpeed(); got != 0 {
		t.Errorf("zero field MaxSpeed = %v", got)
	}
}

func TestToGridCoordsCartesianSpacing(t *testing.T) {
	// A Cartesian grid spanning [0,14]^3 with 8 nodes/axis has
	// physical spacing 2 per index, so grid-coordinate velocity is
	// physical velocity / 2.
	g, err := grid.NewCartesian(8, 8, 8, vmath.AABB{
		Min: vmath.V3(0, 0, 0), Max: vmath.V3(14, 14, 14),
	})
	if err != nil {
		t.Fatal(err)
	}
	f := NewField(8, 8, 8, Physical)
	for i := range f.U {
		f.U[i], f.V[i], f.W[i] = 2, 4, -6
	}
	conv, err := ToGridCoords(f, g)
	if err != nil {
		t.Fatal(err)
	}
	if conv.Coords != GridCoords {
		t.Error("converted field not marked GridCoords")
	}
	want := vmath.V3(1, 2, -3)
	for _, node := range [][3]int{{1, 1, 1}, {4, 5, 6}, {6, 6, 6}} {
		got := conv.At(node[0], node[1], node[2])
		if !got.ApproxEqual(want, 1e-3) {
			t.Errorf("node %v converted velocity %v, want %v", node, got, want)
		}
	}
}

func TestToGridCoordsRejects(t *testing.T) {
	g := testGrid(t)
	f := NewField(4, 4, 4, Physical)
	if _, err := ToGridCoords(f, g); err == nil {
		t.Error("dimension mismatch accepted")
	}
	f2 := NewField(8, 8, 8, GridCoords)
	if _, err := ToGridCoords(f2, g); err == nil {
		t.Error("double conversion accepted")
	}
}

func TestUnsteadyValidation(t *testing.T) {
	g := testGrid(t)
	steps := []*Field{randomField(8, 8, 8, 5), randomField(8, 8, 8, 6)}
	u, err := NewUnsteady(g, steps, 0.1)
	if err != nil {
		t.Fatal(err)
	}
	if u.NumSteps() != 2 {
		t.Errorf("NumSteps = %d", u.NumSteps())
	}
	if _, err := NewUnsteady(g, nil, 0.1); err == nil {
		t.Error("empty dataset accepted")
	}
	if _, err := NewUnsteady(g, steps, 0); err == nil {
		t.Error("zero dt accepted")
	}
	bad := []*Field{randomField(8, 8, 8, 7), randomField(4, 4, 4, 8)}
	if _, err := NewUnsteady(g, bad, 0.1); err == nil {
		t.Error("mismatched timestep accepted")
	}
}

func TestUnsteadyStepClamping(t *testing.T) {
	g := testGrid(t)
	steps := []*Field{randomField(8, 8, 8, 9), randomField(8, 8, 8, 10)}
	u, _ := NewUnsteady(g, steps, 0.1)
	if u.Step(-5) != steps[0] {
		t.Error("negative step not clamped to first")
	}
	if u.Step(99) != steps[1] {
		t.Error("overflow step not clamped to last")
	}
}

func TestSampleAtTimeInterpolates(t *testing.T) {
	g := testGrid(t)
	f0 := NewField(8, 8, 8, GridCoords)
	f1 := NewField(8, 8, 8, GridCoords)
	for i := range f0.U {
		f0.U[i] = 1
		f1.U[i] = 3
	}
	u, _ := NewUnsteady(g, []*Field{f0, f1}, 0.1)
	gc := vmath.V3(3.5, 3.5, 3.5)
	if got := u.SampleAtTime(gc, 0.5); absf(got.X-2) > 1e-5 {
		t.Errorf("midpoint sample = %v, want U=2", got)
	}
	if got := u.SampleAtTime(gc, -1); absf(got.X-1) > 1e-5 {
		t.Errorf("before-start sample = %v, want U=1", got)
	}
	if got := u.SampleAtTime(gc, 10); absf(got.X-3) > 1e-5 {
		t.Errorf("after-end sample = %v, want U=3", got)
	}
}

func TestUnsteadySizeBytesMatchesPaper(t *testing.T) {
	// "Each timestep consists of about one and a half megabytes of
	// velocity data" — the 64x64x32 timestep is 1,572,864 bytes, and
	// the full 800-step dataset is 800x that.
	g, err := grid.NewTaperedCylinder(grid.DefaultTaperedCylinder())
	if err != nil {
		t.Fatal(err)
	}
	steps := make([]*Field, 3)
	for i := range steps {
		steps[i] = NewField(g.NI, g.NJ, g.NK, GridCoords)
	}
	u, err := NewUnsteady(g, steps, 0.05)
	if err != nil {
		t.Fatal(err)
	}
	if got := u.SizeBytes(); got != 3*1572864 {
		t.Errorf("SizeBytes = %d, want %d", got, 3*1572864)
	}
}

func TestFieldRoundTrip(t *testing.T) {
	f := randomField(5, 6, 7, 11)
	f.Coords = GridCoords
	var buf bytes.Buffer
	if err := WriteField(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadField(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NI != 5 || got.NJ != 6 || got.NK != 7 || got.Coords != GridCoords {
		t.Fatalf("metadata mismatch: %+v", got)
	}
	for i := range f.U {
		if got.U[i] != f.U[i] || got.V[i] != f.V[i] || got.W[i] != f.W[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestFieldRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		orig := randomField(3, 4, 5, seed)
		var buf bytes.Buffer
		if err := WriteField(&buf, orig); err != nil {
			return false
		}
		got, err := ReadField(&buf)
		if err != nil {
			return false
		}
		for i := range orig.U {
			if got.U[i] != orig.U[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Error(err)
	}
}

func TestGridRoundTrip(t *testing.T) {
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 8, NJ: 10, NK: 4, R0: 1, R1: 0.5, Router: 6, Span: 4, Stretch: 1.5,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NI != g.NI || got.NJ != g.NJ || got.NK != g.NK {
		t.Fatalf("dims mismatch")
	}
	for i := range g.X {
		if got.X[i] != g.X[i] || got.Y[i] != g.Y[i] || got.Z[i] != g.Z[i] {
			t.Fatalf("coords mismatch at %d", i)
		}
	}
}

func TestReadFieldRejectsGarbage(t *testing.T) {
	cases := [][]byte{
		{},
		{1, 2, 3},
		bytes.Repeat([]byte{0xff}, 64),
	}
	for i, c := range cases {
		if _, err := ReadField(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: garbage accepted", i)
		}
		if _, err := ReadGrid(bytes.NewReader(c)); err == nil {
			t.Errorf("case %d: grid garbage accepted", i)
		}
	}
}

func TestReadFieldRejectsHugeDims(t *testing.T) {
	var buf bytes.Buffer
	f := NewField(2, 2, 2, Physical)
	if err := WriteField(&buf, f); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	// Corrupt NI to an absurd value.
	b[4], b[5], b[6], b[7] = 0xff, 0xff, 0xff, 0x7f
	if _, err := ReadField(bytes.NewReader(b)); err == nil {
		t.Error("huge dims accepted")
	}
}

func TestReadFieldTruncatedPayload(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteField(&buf, randomField(4, 4, 4, 12)); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	if _, err := ReadField(bytes.NewReader(b[:len(b)/2])); err == nil {
		t.Error("truncated payload accepted")
	}
}

func absf(f float32) float32 {
	if f < 0 {
		return -f
	}
	return f
}

func BenchmarkFieldSample(b *testing.B) {
	g := testGrid(b)
	f := randomField(8, 8, 8, 13)
	gc := vmath.V3(3.3, 4.7, 2.1)
	b.ResetTimer()
	var sink vmath.Vec3
	for i := 0; i < b.N; i++ {
		sink = f.Sample(g, gc)
	}
	_ = sink
}

func BenchmarkWriteField(b *testing.B) {
	f := randomField(64, 64, 32, 14)
	b.SetBytes(f.SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		buf.Grow(int(f.SizeBytes()) + 64)
		if err := WriteField(&buf, f); err != nil {
			b.Fatal(err)
		}
	}
}

func TestPLOT3DGridRoundTrip(t *testing.T) {
	g, err := grid.NewTaperedCylinder(grid.TaperedCylinderSpec{
		NI: 6, NJ: 8, NK: 4, R0: 1, R1: 0.5, Router: 5, Span: 4, Stretch: 1.2,
	})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WritePLOT3DGrid(&buf, g); err != nil {
		t.Fatal(err)
	}
	// Header: 3 int32 + payload 3*4*N bytes.
	want := 12 + 3*4*g.NumNodes()
	if buf.Len() != want {
		t.Errorf("plot3d grid file %d bytes, want %d", buf.Len(), want)
	}
	got, err := ReadPLOT3DGrid(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NI != g.NI || got.NJ != g.NJ || got.NK != g.NK {
		t.Fatal("dims mismatch")
	}
	for i := range g.X {
		if got.X[i] != g.X[i] || got.Y[i] != g.Y[i] || got.Z[i] != g.Z[i] {
			t.Fatalf("coords mismatch at %d", i)
		}
	}
}

func TestPLOT3DFunctionRoundTrip(t *testing.T) {
	f := randomField(5, 6, 4, 77)
	var buf bytes.Buffer
	if err := WritePLOT3DFunction(&buf, f); err != nil {
		t.Fatal(err)
	}
	got, err := ReadPLOT3DFunction(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Coords != Physical {
		t.Error("plot3d velocities not physical")
	}
	for i := range f.U {
		if got.U[i] != f.U[i] || got.V[i] != f.V[i] || got.W[i] != f.W[i] {
			t.Fatalf("payload mismatch at %d", i)
		}
	}
}

func TestPLOT3DRejectsGarbage(t *testing.T) {
	if _, err := ReadPLOT3DGrid(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Error("short grid accepted")
	}
	if _, err := ReadPLOT3DFunction(bytes.NewReader(bytes.Repeat([]byte{0xff}, 32))); err == nil {
		t.Error("absurd function dims accepted")
	}
	// Wrong variable count.
	var buf bytes.Buffer
	hdr := []int32{4, 4, 4, 5}
	for _, v := range hdr {
		buf.Write([]byte{byte(v), byte(v >> 8), byte(v >> 16), byte(v >> 24)})
	}
	if _, err := ReadPLOT3DFunction(&buf); err == nil {
		t.Error("5-variable function accepted as velocity")
	}
}
