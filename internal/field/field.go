// Package field represents the velocity data of unsteady flowfields.
//
// A flowfield (§1.1 of the paper) is the time-dependent velocity
// vector part of a CFD solution: a sequence of timesteps, each a 3-D
// velocity vector field sampled at the nodes of a curvilinear grid.
// Velocities may be stored in physical coordinates (as a solver
// produces them) or pre-converted to grid coordinates (as the
// windtunnel integrates them, §2.1).
package field

import (
	"fmt"
	"math"

	"repro/internal/grid"
	"repro/internal/vmath"
)

// CoordSystem records which coordinate system a field's velocity
// vectors are expressed in.
type CoordSystem uint8

const (
	// Physical velocity: units of physical length per unit time.
	Physical CoordSystem = iota
	// GridCoords velocity: units of grid cells per unit time, the
	// paper's integration-friendly representation.
	GridCoords
)

func (c CoordSystem) String() string {
	switch c {
	case Physical:
		return "physical"
	case GridCoords:
		return "grid"
	default:
		return fmt.Sprintf("CoordSystem(%d)", uint8(c))
	}
}

// Field is one timestep of velocity data on an NI x NJ x NK node grid,
// stored as separate component arrays (structure-of-arrays) so the
// vectorized compute engine can stream whole components.
type Field struct {
	NI, NJ, NK int
	Coords     CoordSystem
	U, V, W    []float32
}

// NewField allocates a zero field of the given dimensions.
func NewField(ni, nj, nk int, coords CoordSystem) *Field {
	n := ni * nj * nk
	return &Field{
		NI: ni, NJ: nj, NK: nk,
		Coords: coords,
		U:      make([]float32, n),
		V:      make([]float32, n),
		W:      make([]float32, n),
	}
}

// NumNodes returns the number of sample points.
func (f *Field) NumNodes() int { return f.NI * f.NJ * f.NK }

// SizeBytes returns the in-memory/on-disk payload size of the field:
// three 4-byte components per node, the figure Table 2 is built on.
func (f *Field) SizeBytes() int64 { return int64(f.NumNodes()) * 12 }

// Index returns the linear index of node (i, j, k).
func (f *Field) Index(i, j, k int) int { return (k*f.NJ+j)*f.NI + i }

// At returns the velocity at node (i, j, k).
func (f *Field) At(i, j, k int) vmath.Vec3 {
	idx := f.Index(i, j, k)
	return vmath.Vec3{X: f.U[idx], Y: f.V[idx], Z: f.W[idx]}
}

// SetAt sets the velocity at node (i, j, k).
func (f *Field) SetAt(i, j, k int, v vmath.Vec3) {
	idx := f.Index(i, j, k)
	f.U[idx], f.V[idx], f.W[idx] = v.X, v.Y, v.Z
}

// Sample returns the velocity at grid coordinate gc by trilinear
// interpolation over g, which must share the field's dimensions.
func (f *Field) Sample(g *grid.Grid, gc vmath.Vec3) vmath.Vec3 {
	return vmath.Vec3{
		X: g.Trilerp(f.U, gc),
		Y: g.Trilerp(f.V, gc),
		Z: g.Trilerp(f.W, gc),
	}
}

// MatchesGrid reports whether the field's dimensions equal the grid's.
func (f *Field) MatchesGrid(g *grid.Grid) bool {
	return f.NI == g.NI && f.NJ == g.NJ && f.NK == g.NK
}

// Validate checks dimensional invariants and that all samples are
// finite.
func (f *Field) Validate() error {
	n := f.NumNodes()
	if len(f.U) != n || len(f.V) != n || len(f.W) != n {
		return fmt.Errorf("field: component arrays have %d/%d/%d entries, want %d",
			len(f.U), len(f.V), len(f.W), n)
	}
	for i := 0; i < n; i++ {
		v := vmath.Vec3{X: f.U[i], Y: f.V[i], Z: f.W[i]}
		if !v.IsFinite() {
			return fmt.Errorf("field: node %d has non-finite velocity %v", i, v)
		}
	}
	return nil
}

// Clone returns a deep copy of f.
func (f *Field) Clone() *Field {
	c := NewField(f.NI, f.NJ, f.NK, f.Coords)
	copy(c.U, f.U)
	copy(c.V, f.V)
	copy(c.W, f.W)
	return c
}

// MaxSpeed returns the largest velocity magnitude in the field, used
// to pick stable integration step sizes.
func (f *Field) MaxSpeed() float32 {
	var maxSq float32
	for i := range f.U {
		sq := f.U[i]*f.U[i] + f.V[i]*f.V[i] + f.W[i]*f.W[i]
		if sq > maxSq {
			maxSq = sq
		}
	}
	return float32(math.Sqrt(float64(maxSq)))
}

// ToGridCoords converts a physical-coordinate field to grid
// coordinates by applying the inverse grid Jacobian at every node:
// u_grid = J^-1 u_phys. This is the paper's §2.1 preprocessing step
// that lets all integration happen with pure array lookups.
func ToGridCoords(f *Field, g *grid.Grid) (*Field, error) {
	if f.Coords == GridCoords {
		return nil, fmt.Errorf("field: already in grid coordinates")
	}
	if !f.MatchesGrid(g) {
		return nil, fmt.Errorf("field: dims %dx%dx%d do not match grid %dx%dx%d",
			f.NI, f.NJ, f.NK, g.NI, g.NJ, g.NK)
	}
	out := NewField(f.NI, f.NJ, f.NK, GridCoords)
	for k := 0; k < f.NK; k++ {
		for j := 0; j < f.NJ; j++ {
			for i := 0; i < f.NI; i++ {
				gc := vmath.Vec3{X: float32(i), Y: float32(j), Z: float32(k)}
				cols := g.Jacobian(gc)
				ugrid, ok := solveJacobian(cols, f.At(i, j, k))
				if !ok {
					// Degenerate cell (e.g. collapsed pole line):
					// leave the velocity zero rather than poisoning
					// paths with huge values.
					continue
				}
				out.SetAt(i, j, k, ugrid)
			}
		}
	}
	return out, nil
}

// ToPhysicalVelocity converts a grid-coordinate field back to
// physical velocities by applying the grid Jacobian at every node:
// u_phys = J u_grid — the inverse of ToGridCoords, used by the shared
// field-diagnostic tools whose scalars (speed, Q-criterion) are only
// meaningful in physical space.
func ToPhysicalVelocity(f *Field, g *grid.Grid) (*Field, error) {
	if f.Coords == Physical {
		return nil, fmt.Errorf("field: already in physical coordinates")
	}
	if !f.MatchesGrid(g) {
		return nil, fmt.Errorf("field: dims %dx%dx%d do not match grid %dx%dx%d",
			f.NI, f.NJ, f.NK, g.NI, g.NJ, g.NK)
	}
	out := NewField(f.NI, f.NJ, f.NK, Physical)
	for k := 0; k < f.NK; k++ {
		for j := 0; j < f.NJ; j++ {
			for i := 0; i < f.NI; i++ {
				gc := vmath.Vec3{X: float32(i), Y: float32(j), Z: float32(k)}
				cols := g.Jacobian(gc)
				u := f.At(i, j, k)
				out.SetAt(i, j, k, vmath.Vec3{
					X: cols[0].X*u.X + cols[1].X*u.Y + cols[2].X*u.Z,
					Y: cols[0].Y*u.X + cols[1].Y*u.Y + cols[2].Y*u.Z,
					Z: cols[0].Z*u.X + cols[1].Z*u.Y + cols[2].Z*u.Z,
				})
			}
		}
	}
	return out, nil
}

func solveJacobian(cols [3]vmath.Vec3, b vmath.Vec3) (vmath.Vec3, bool) {
	det := cols[0].Dot(cols[1].Cross(cols[2]))
	if det < 1e-12 && det > -1e-12 {
		return vmath.Vec3{}, false
	}
	inv := 1 / det
	return vmath.Vec3{
		X: b.Dot(cols[1].Cross(cols[2])) * inv,
		Y: cols[0].Dot(b.Cross(cols[2])) * inv,
		Z: cols[0].Dot(cols[1].Cross(b)) * inv,
	}, true
}
