package field

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/vmath"
)

// Derived-field diagnostics. The windtunnel's tracers visualize the
// velocity field directly; vorticity magnitude is the scalar whose
// isosurfaces bound the shed vortices, and divergence is the
// incompressibility check applied to generated datasets.

// gradComputational returns the computational-space gradient of
// component a at node (i, j, k) by central differences (one-sided at
// boundaries).
func gradComputational(g *grid.Grid, a []float32, i, j, k int) vmath.Vec3 {
	diff := func(lo, hi int, span float32) float32 {
		return (a[hi] - a[lo]) / span
	}
	var out vmath.Vec3
	// d/di
	iLo, iHi := maxInt(i-1, 0), minInt(i+1, g.NI-1)
	out.X = diff(g.Index(iLo, j, k), g.Index(iHi, j, k), float32(iHi-iLo))
	// d/dj
	jLo, jHi := maxInt(j-1, 0), minInt(j+1, g.NJ-1)
	out.Y = diff(g.Index(i, jLo, k), g.Index(i, jHi, k), float32(jHi-jLo))
	// d/dk
	kLo, kHi := maxInt(k-1, 0), minInt(k+1, g.NK-1)
	out.Z = diff(g.Index(i, j, kLo), g.Index(i, j, kHi), float32(kHi-kLo))
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// physicalGradients returns the physical-space gradient rows
// (du/dx, du/dy, du/dz) for each velocity component at node (i, j, k):
// grad_x u = J^-T grad_xi u, where J is the grid Jacobian.
func physicalGradients(g *grid.Grid, f *Field, i, j, k int) (gu, gv, gw vmath.Vec3, ok bool) {
	gc := vmath.Vec3{X: float32(i), Y: float32(j), Z: float32(k)}
	cols := g.Jacobian(gc) // d(phys)/d(xi), columns per computational axis
	inv, invOK := invert3(cols)
	if !invOK {
		return vmath.Vec3{}, vmath.Vec3{}, vmath.Vec3{}, false
	}
	// Chain rule: d(comp)/dx_m = sum_a d(comp)/dxi_a * dxi_a/dx_m.
	// inv rows are dxi_a/dx; computational gradients dot them.
	chain := func(a []float32) vmath.Vec3 {
		gxi := gradComputational(g, a, i, j, k)
		return vmath.Vec3{
			X: gxi.X*inv[0].X + gxi.Y*inv[1].X + gxi.Z*inv[2].X,
			Y: gxi.X*inv[0].Y + gxi.Y*inv[1].Y + gxi.Z*inv[2].Y,
			Z: gxi.X*inv[0].Z + gxi.Y*inv[1].Z + gxi.Z*inv[2].Z,
		}
	}
	return chain(f.U), chain(f.V), chain(f.W), true
}

// invert3 inverts the 3x3 matrix given by columns, returning rows of
// the inverse.
func invert3(cols [3]vmath.Vec3) ([3]vmath.Vec3, bool) {
	det := cols[0].Dot(cols[1].Cross(cols[2]))
	if det < 1e-12 && det > -1e-12 {
		return [3]vmath.Vec3{}, false
	}
	inv := 1 / det
	r0 := cols[1].Cross(cols[2]).Scale(inv)
	r1 := cols[2].Cross(cols[0]).Scale(inv)
	r2 := cols[0].Cross(cols[1]).Scale(inv)
	return [3]vmath.Vec3{r0, r1, r2}, true
}

// Vorticity returns the curl of a physical-coordinate velocity field
// at every node: (dw/dy - dv/dz, du/dz - dw/dx, dv/dx - du/dy).
// Degenerate cells produce zero vorticity rather than an error.
func Vorticity(g *grid.Grid, f *Field) (*Field, error) {
	if f.Coords != Physical {
		return nil, fmt.Errorf("field: vorticity needs physical-coordinate velocities")
	}
	if !f.MatchesGrid(g) {
		return nil, fmt.Errorf("field: dims do not match grid")
	}
	out := NewField(f.NI, f.NJ, f.NK, Physical)
	for k := 0; k < f.NK; k++ {
		for j := 0; j < f.NJ; j++ {
			for i := 0; i < f.NI; i++ {
				gu, gv, gw, ok := physicalGradients(g, f, i, j, k)
				if !ok {
					continue
				}
				out.SetAt(i, j, k, vmath.Vec3{
					X: gw.Y - gv.Z,
					Y: gu.Z - gw.X,
					Z: gv.X - gu.Y,
				})
			}
		}
	}
	return out, nil
}

// QCriterion returns the node-indexed Q-criterion of a
// physical-coordinate velocity field: Q = ½(‖Ω‖² − ‖S‖²) where S and
// Ω are the symmetric and antisymmetric parts of the velocity-gradient
// tensor. Q > 0 marks rotation-dominated regions, so the vortex-core
// tool extracts the isosurface of this scalar at a small positive
// threshold. Expanding the norms, Q = −½ ∂u_i/∂x_j ∂u_j/∂x_i.
// Degenerate cells produce Q = 0 rather than an error.
func QCriterion(g *grid.Grid, f *Field) ([]float32, error) {
	if f.Coords != Physical {
		return nil, fmt.Errorf("field: Q-criterion needs physical-coordinate velocities")
	}
	if !f.MatchesGrid(g) {
		return nil, fmt.Errorf("field: dims do not match grid")
	}
	out := make([]float32, f.NumNodes())
	for k := 0; k < f.NK; k++ {
		for j := 0; j < f.NJ; j++ {
			for i := 0; i < f.NI; i++ {
				gu, gv, gw, ok := physicalGradients(g, f, i, j, k)
				if !ok {
					continue
				}
				q := -0.5*(gu.X*gu.X+gv.Y*gv.Y+gw.Z*gw.Z) -
					(gu.Y*gv.X + gu.Z*gw.X + gv.Z*gw.Y)
				out[g.Index(i, j, k)] = q
			}
		}
	}
	return out, nil
}

// DivergenceStats returns the mean and max absolute divergence of a
// physical-coordinate field — the incompressibility diagnostic.
func DivergenceStats(g *grid.Grid, f *Field) (mean, max float64, err error) {
	if f.Coords != Physical {
		return 0, 0, fmt.Errorf("field: divergence needs physical-coordinate velocities")
	}
	if !f.MatchesGrid(g) {
		return 0, 0, fmt.Errorf("field: dims do not match grid")
	}
	var sum float64
	var n int
	for k := 0; k < f.NK; k++ {
		for j := 0; j < f.NJ; j++ {
			for i := 0; i < f.NI; i++ {
				gu, gv, gw, ok := physicalGradients(g, f, i, j, k)
				if !ok {
					continue
				}
				div := float64(gu.X + gv.Y + gw.Z)
				if div < 0 {
					div = -div
				}
				sum += div
				if div > max {
					max = div
				}
				n++
			}
		}
	}
	if n == 0 {
		return 0, 0, fmt.Errorf("field: no valid cells")
	}
	return sum / float64(n), max, nil
}
