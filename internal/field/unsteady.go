package field

import (
	"fmt"

	"repro/internal/grid"
	"repro/internal/vmath"
)

// Unsteady is an in-memory unsteady flowfield: a grid plus an ordered
// sequence of velocity timesteps separated by a uniform time interval
// DT (in flow time units). The tapered cylinder dataset in the paper
// has 800 timesteps of ~1.5 MB each.
type Unsteady struct {
	Grid  *grid.Grid
	Steps []*Field
	DT    float32
}

// NewUnsteady validates that every timestep matches the grid and
// returns the assembled dataset.
func NewUnsteady(g *grid.Grid, steps []*Field, dt float32) (*Unsteady, error) {
	if len(steps) == 0 {
		return nil, fmt.Errorf("field: unsteady dataset needs at least one timestep")
	}
	if dt <= 0 {
		return nil, fmt.Errorf("field: non-positive timestep interval %g", dt)
	}
	coords := steps[0].Coords
	for i, s := range steps {
		if !s.MatchesGrid(g) {
			return nil, fmt.Errorf("field: timestep %d dims %dx%dx%d do not match grid %dx%dx%d",
				i, s.NI, s.NJ, s.NK, g.NI, g.NJ, g.NK)
		}
		if s.Coords != coords {
			return nil, fmt.Errorf("field: timestep %d coord system %v differs from %v", i, s.Coords, coords)
		}
	}
	return &Unsteady{Grid: g, Steps: steps, DT: dt}, nil
}

// NumSteps returns the number of timesteps.
func (u *Unsteady) NumSteps() int { return len(u.Steps) }

// Step returns timestep t clamped into range.
func (u *Unsteady) Step(t int) *Field {
	if t < 0 {
		t = 0
	}
	if t >= len(u.Steps) {
		t = len(u.Steps) - 1
	}
	return u.Steps[t]
}

// SizeBytes returns the total velocity payload across all timesteps.
func (u *Unsteady) SizeBytes() int64 {
	var total int64
	for _, s := range u.Steps {
		total += s.SizeBytes()
	}
	return total
}

// SampleAtTime samples velocity at grid coordinate gc at continuous
// time index t (in timesteps), linearly interpolating between the two
// bracketing timesteps. t outside the dataset clamps to the ends.
func (u *Unsteady) SampleAtTime(gc vmath.Vec3, t float32) vmath.Vec3 {
	if t <= 0 {
		return u.Steps[0].Sample(u.Grid, gc)
	}
	last := float32(len(u.Steps) - 1)
	if t >= last {
		return u.Steps[len(u.Steps)-1].Sample(u.Grid, gc)
	}
	t0 := int(t)
	frac := t - float32(t0)
	a := u.Steps[t0].Sample(u.Grid, gc)
	b := u.Steps[t0+1].Sample(u.Grid, gc)
	return a.Lerp(b, frac)
}

// ToGridCoords converts every timestep to grid coordinates.
func (u *Unsteady) ToGridCoords() (*Unsteady, error) {
	steps := make([]*Field, len(u.Steps))
	for i, s := range u.Steps {
		conv, err := ToGridCoords(s, u.Grid)
		if err != nil {
			return nil, fmt.Errorf("field: timestep %d: %w", i, err)
		}
		steps[i] = conv
	}
	return &Unsteady{Grid: u.Grid, Steps: steps, DT: u.DT}, nil
}
