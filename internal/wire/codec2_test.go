package wire

import (
	"bytes"
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"repro/internal/vmath"
)

// --- quantization properties -----------------------------------------

// randBox draws a bounding box, sometimes degenerate: each axis is
// flat (zero extent) with probability 1/4.
func randBox(rng *rand.Rand) Quantizer {
	axis := func() (float32, float32) {
		lo := float32(rng.NormFloat64() * 100)
		if rng.Intn(4) == 0 {
			return lo, lo // flat axis
		}
		return lo, lo + float32(rng.Float64()*1000+1e-6)
	}
	var q Quantizer
	q.Min.X, q.Max.X = axis()
	q.Min.Y, q.Max.Y = axis()
	q.Min.Z, q.Max.Z = axis()
	return q
}

// inBoxPoint draws a point inside the box (on the axis minimum for
// flat axes).
func inBoxPoint(rng *rand.Rand, q Quantizer) vmath.Vec3 {
	lerp := func(lo, hi float32) float32 {
		return float32(float64(lo) + rng.Float64()*(float64(hi)-float64(lo)))
	}
	return vmath.Vec3{
		X: lerp(q.Min.X, q.Max.X),
		Y: lerp(q.Min.Y, q.Max.Y),
		Z: lerp(q.Min.Z, q.Max.Z),
	}
}

// TestQuantizerRoundTripError pins the codec's error contract: for any
// box (including degenerate flat ones) and any in-box point, the
// quantize/dequantize round trip lands within MaxError per axis, plus
// a float32 representation slack proportional to the coordinate
// magnitude.
func TestQuantizerRoundTripError(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		q := randBox(rng)
		bound := q.MaxError()
		for i := 0; i < 100; i++ {
			p := inBoxPoint(rng, q)
			got := q.RoundTrip(p)
			check := func(axis string, have, want, maxErr, scale float32) {
				slack := float32(math.Abs(float64(scale))) * 1e-5
				if diff := float32(math.Abs(float64(have) - float64(want))); diff > maxErr+slack {
					t.Fatalf("trial %d: %s error %g exceeds %g (+%g slack); box [%v,%v] point %v",
						trial, axis, diff, maxErr, slack, q.Min, q.Max, p)
				}
			}
			check("x", got.X, p.X, bound.X, q.Max.X)
			check("y", got.Y, p.Y, bound.Y, q.Max.Y)
			check("z", got.Z, p.Z, bound.Z, q.Max.Z)
		}
	}
}

// TestQuantizerDegenerateBox pins the flat-axis contract exactly: a
// zero-extent axis always round-trips to the axis minimum with zero
// error, and never divides by zero.
func TestQuantizerDegenerateBox(t *testing.T) {
	q := Quantizer{Min: vmath.V3(3, -2, 7), Max: vmath.V3(3, -2, 7)}
	for _, p := range []vmath.Vec3{q.Min, vmath.V3(100, -100, 0), vmath.V3(3, -2, 7.0001)} {
		if got := q.RoundTrip(p); got != q.Min {
			t.Errorf("flat box round trip of %v = %v, want %v", p, got, q.Min)
		}
	}
}

// TestQuantizerIdempotent: quantizing a dequantized point returns the
// same triple — the codec is stable under repeated round trips.
func TestQuantizerIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		q := randBox(rng)
		p := inBoxPoint(rng, q)
		x1, y1, z1 := q.Quant(p)
		x2, y2, z2 := q.Quant(q.Dequant(x1, y1, z1))
		if x1 != x2 || y1 != y2 || z1 != z2 {
			t.Fatalf("quant not idempotent: (%d,%d,%d) -> (%d,%d,%d)", x1, y1, z1, x2, y2, z2)
		}
	}
}

// TestQuantizerClampsOutOfBox: points beyond the box land on its
// faces, never outside, and hostile uint16 inputs always dequantize
// into the box.
func TestQuantizerClampsOutOfBox(t *testing.T) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	got := q.RoundTrip(vmath.V3(-5, 20, 1e30))
	if got.X != 0 || got.Y != 10 || got.Z != 10 {
		t.Errorf("out-of-box round trip = %v", got)
	}
	for _, raw := range []uint16{0, 1, 32767, 65534, 65535} {
		p := q.Dequant(raw, raw, raw)
		for _, v := range []float32{p.X, p.Y, p.Z} {
			if v < 0 || v > 10 {
				t.Errorf("dequant(%d) = %v escapes the box", raw, p)
			}
		}
	}
}

// --- varint properties -----------------------------------------------

// TestUvarintRoundTripHostile round-trips boundary and random values
// and rejects every truncation of their encodings, plus overlong
// encodings that overflow 64 bits.
func TestUvarintRoundTripHostile(t *testing.T) {
	values := []uint64{0, 1, 127, 128, 16383, 16384, 1<<32 - 1, 1 << 32, math.MaxUint64}
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 100; i++ {
		values = append(values, rng.Uint64())
	}
	for _, v := range values {
		e := encoder{}
		e.uvarint(v)
		d := decoder{buf: e.buf}
		if got := d.uvarint(); d.err != nil || got != v {
			t.Fatalf("round trip %d -> %d (err %v)", v, got, d.err)
		}
		if len(d.buf) != 0 {
			t.Fatalf("value %d left %d bytes", v, len(d.buf))
		}
		// Every proper prefix must fail, not misparse.
		for cut := 0; cut < len(e.buf); cut++ {
			d := decoder{buf: e.buf[:cut]}
			d.uvarint()
			if d.err == nil {
				t.Fatalf("truncated varint (%d of %d bytes) decoded silently", cut, len(e.buf))
			}
		}
	}
	// 10 continuation bytes overflow uint64: binary.Uvarint reports
	// n < 0, which must surface as an error.
	overlong := bytes.Repeat([]byte{0xff}, 10)
	d := decoder{buf: overlong}
	d.uvarint()
	if d.err == nil {
		t.Error("overlong varint decoded silently")
	}
}

// --- delta frame properties ------------------------------------------

// randGeometry builds a random geometry for a rake: a few lines of a
// few points each inside the quantizer's box.
func randGeometry(rng *rand.Rand, rake int32, q Quantizer) Geometry {
	g := Geometry{Rake: rake, Tool: uint8(rng.Intn(3))}
	nLines := rng.Intn(4) + 1
	for l := 0; l < nLines; l++ {
		line := make([]vmath.Vec3, rng.Intn(20))
		for p := range line {
			line[p] = inBoxPoint(rng, q)
		}
		g.Lines = append(g.Lines, line)
	}
	return g
}

// quantReference returns the geometry the decoder must reconstruct:
// every point round-tripped through the quantizer.
func quantReference(g Geometry, q Quantizer) Geometry {
	out := Geometry{Rake: g.Rake, Tool: g.Tool, Lines: make([][]vmath.Vec3, len(g.Lines))}
	for l, line := range g.Lines {
		nl := make([]vmath.Vec3, len(line))
		for p := range line {
			nl[p] = q.RoundTrip(line[p])
		}
		out.Lines[l] = nl
	}
	return out
}

func geometriesEqual(a, b Geometry) bool {
	if a.Rake != b.Rake || a.Tool != b.Tool || len(a.Lines) != len(b.Lines) {
		return false
	}
	for l := range a.Lines {
		if len(a.Lines[l]) != len(b.Lines[l]) {
			return false
		}
		for p := range a.Lines[l] {
			if a.Lines[l][p] != b.Lines[l][p] {
				return false
			}
		}
	}
	return true
}

// TestDeltaEncodeDecodeIdentity is the codec's core property:
// delta-apply ∘ delta-encode == identity (up to quantization) over
// randomized rake version histories — rakes mutate, hold still, appear,
// and disappear at random; every decoded frame must equal the
// quantized reference, and steady frames must actually shrink.
func TestDeltaEncodeDecodeIdentity(t *testing.T) {
	rng := rand.New(rand.NewSource(1234))
	for trial := 0; trial < 20; trial++ {
		q := randBox(rng)
		enc := NewFrameEncoder(q)
		dec := NewFrameDecoder(q)

		type rakeState struct {
			geo Geometry
			seq uint64
		}
		live := map[int32]*rakeState{}
		var nextSeq uint64
		var nextRake int32 = 1

		for round := 0; round < 40; round++ {
			// Mutate the population.
			for id, st := range live {
				switch rng.Intn(5) {
				case 0: // content change
					st.geo = randGeometry(rng, id, q)
					nextSeq++
					st.seq = nextSeq
				case 1: // rake removed
					delete(live, id)
				}
			}
			if len(live) < 5 && rng.Intn(2) == 0 {
				id := nextRake
				nextRake++
				nextSeq++
				live[id] = &rakeState{geo: randGeometry(rng, id, q), seq: nextSeq}
			}

			// Deterministic frame order: ascending rake id.
			var r FrameReply
			r.Round = uint64(round)
			var seqs []uint64
			for id := int32(1); id < nextRake; id++ {
				if st, ok := live[id]; ok {
					r.Geometry = append(r.Geometry, st.geo)
					seqs = append(seqs, st.seq)
				}
			}

			buf := enc.AppendFrame(nil, r, seqs, nil, nil, nil)
			got, err := dec.Decode(buf)
			if err != nil {
				t.Fatalf("trial %d round %d: decode: %v", trial, round, err)
			}
			if len(got.Geometry) != len(r.Geometry) {
				t.Fatalf("trial %d round %d: %d geometries, want %d",
					trial, round, len(got.Geometry), len(r.Geometry))
			}
			for i := range r.Geometry {
				want := quantReference(r.Geometry[i], q)
				if !geometriesEqual(got.Geometry[i], want) {
					t.Fatalf("trial %d round %d: rake %d mismatch after delta round trip",
						trial, round, r.Geometry[i].Rake)
				}
			}
			if enc.LastInline+enc.LastRef != len(r.Geometry) {
				t.Fatalf("directory counts %d+%d != %d",
					enc.LastInline, enc.LastRef, len(r.Geometry))
			}
		}
	}
}

// TestDeltaSteadyFramesAreRefs: once a rake has shipped, unchanged
// rounds reference it instead of re-sending, and the frame shrinks to
// a fraction of the keyframe.
func TestDeltaSteadyFramesAreRefs(t *testing.T) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	enc := NewFrameEncoder(q)
	var r FrameReply
	rng := rand.New(rand.NewSource(5))
	for i := int32(1); i <= 3; i++ {
		g := randGeometry(rng, i, q)
		for len(g.Lines[0]) < 50 { // make it big enough to measure
			g.Lines[0] = append(g.Lines[0], inBoxPoint(rng, q))
		}
		r.Geometry = append(r.Geometry, g)
	}
	seqs := []uint64{1, 2, 3}
	key := enc.AppendFrame(nil, r, seqs, nil, nil, nil)
	if enc.LastInline != 3 || enc.LastRef != 0 {
		t.Fatalf("keyframe: inline=%d ref=%d", enc.LastInline, enc.LastRef)
	}
	steady := enc.AppendFrame(nil, r, seqs, nil, nil, nil)
	if enc.LastInline != 0 || enc.LastRef != 3 {
		t.Fatalf("steady: inline=%d ref=%d", enc.LastInline, enc.LastRef)
	}
	if len(steady)*4 > len(key) {
		t.Errorf("steady frame %dB not <1/4 of keyframe %dB", len(steady), len(key))
	}
	dec := NewFrameDecoder(q)
	if _, err := dec.Decode(key); err != nil {
		t.Fatal(err)
	}
	got, err := dec.Decode(steady)
	if err != nil {
		t.Fatal(err)
	}
	if got.TotalPoints() != r.TotalPoints() {
		t.Errorf("steady decode %d points, want %d", got.TotalPoints(), r.TotalPoints())
	}
}

// TestDecodeRefToUnknownRake: a reference record for geometry the
// decoder never received is a hard error, not a panic or silent skip.
func TestDecodeRefToUnknownRake(t *testing.T) {
	q := Quantizer{Max: vmath.V3(1, 1, 1)}
	enc := NewFrameEncoder(q)
	r := FrameReply{Geometry: []Geometry{{Rake: 7, Lines: [][]vmath.Vec3{{{X: 0.5}}}}}}
	// Teach the encoder the rake, then ask a *fresh* decoder to resolve
	// the resulting reference.
	enc.AppendFrame(nil, r, []uint64{9}, nil, nil, nil)
	refFrame := enc.AppendFrame(nil, r, []uint64{9}, nil, nil, nil)
	dec := NewFrameDecoder(q)
	if _, err := dec.Decode(refFrame); err == nil {
		t.Fatal("reference to never-sent rake decoded silently")
	}
	// Same rake, wrong sequence: also an error.
	dec2 := NewFrameDecoder(q)
	enc2 := NewFrameEncoder(q)
	key := enc2.AppendFrame(nil, r, []uint64{8}, nil, nil, nil)
	if _, err := dec2.Decode(key); err != nil {
		t.Fatal(err)
	}
	if _, err := dec2.Decode(refFrame); err == nil {
		t.Fatal("reference to wrong sequence decoded silently")
	}
}

// TestDeltaRemovedRakePrunes: after a rake leaves the frame, both ends
// prune it; re-adding the id with a new sequence re-inlines.
func TestDeltaRemovedRakePrunes(t *testing.T) {
	q := Quantizer{Max: vmath.V3(1, 1, 1)}
	enc := NewFrameEncoder(q)
	dec := NewFrameDecoder(q)
	g := Geometry{Rake: 1, Lines: [][]vmath.Vec3{{{X: 0.25}}}}
	full := FrameReply{Geometry: []Geometry{g}}
	empty := FrameReply{}

	if _, err := dec.Decode(enc.AppendFrame(nil, full, []uint64{1}, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	if _, err := dec.Decode(enc.AppendFrame(nil, empty, nil, nil, nil, nil)); err != nil {
		t.Fatal(err)
	}
	// Rake 1 returns with new content: must inline, and decode fine.
	buf := enc.AppendFrame(nil, full, []uint64{2}, nil, nil, nil)
	if enc.LastInline != 1 {
		t.Fatalf("re-added rake not inlined (inline=%d ref=%d)", enc.LastInline, enc.LastRef)
	}
	if _, err := dec.Decode(buf); err != nil {
		t.Fatal(err)
	}
}

// TestFrameV2MetaRoundTrip: header fields (time, counters, users,
// rakes) survive the v2 encoding exactly.
func TestFrameV2MetaRoundTrip(t *testing.T) {
	q := Quantizer{Max: vmath.V3(1, 1, 1)}
	r := FrameReply{
		Time:         TimeStatus{Current: 1.5, Speed: -2, Playing: true, Loop: true, NumSteps: 77},
		ComputeNanos: 123, LoadNanos: 456, Round: 99, Degraded: 3,
		Users: []UserState{{ID: 12, Head: vmath.Identity(), Hand: vmath.V3(1, 2, 3), Gesture: 2}},
		Rakes: []RakeState{{ID: 4, P0: vmath.V3(0, 0.5, 0), P1: vmath.V3(1, 1, 1),
			NumSeeds: 9, Tool: 1, Holder: 12, Grab: 2}},
	}
	enc := NewFrameEncoder(q)
	dec := NewFrameDecoder(q)
	got, err := dec.Decode(enc.AppendFrame(nil, r, nil, nil, nil, nil))
	if err != nil {
		t.Fatal(err)
	}
	if got.Time != r.Time || got.ComputeNanos != r.ComputeNanos ||
		got.LoadNanos != r.LoadNanos || got.Round != r.Round || got.Degraded != r.Degraded {
		t.Errorf("meta mismatch: %+v", got)
	}
	if len(got.Users) != 1 || got.Users[0] != r.Users[0] {
		t.Errorf("users mismatch: %+v", got.Users)
	}
	if len(got.Rakes) != 1 || got.Rakes[0] != r.Rakes[0] {
		t.Errorf("rakes mismatch: %+v", got.Rakes)
	}
}

// TestFrameV2CachedSegmentsMatchFresh: the server's segment cache path
// (pre-encoded bytes handed to AppendFrame) must produce exactly the
// bytes of the fresh-encode path.
func TestFrameV2CachedSegmentsMatchFresh(t *testing.T) {
	q := Quantizer{Max: vmath.V3(4, 4, 4)}
	rng := rand.New(rand.NewSource(11))
	r := FrameReply{Geometry: []Geometry{
		randGeometry(rng, 1, q), randGeometry(rng, 2, q),
	}}
	seqs := []uint64{5, 6}
	segs := [][]byte{
		AppendGeomV2(nil, r.Geometry[0], q),
		AppendGeomV2(nil, r.Geometry[1], q),
	}
	fresh := NewFrameEncoder(q).AppendFrame(nil, r, seqs, nil, nil, nil)
	cached := NewFrameEncoder(q).AppendFrame(nil, r, seqs, segs, nil, nil)
	if !bytes.Equal(fresh, cached) {
		t.Error("cached-segment encode differs from fresh encode")
	}
}

// TestDecodeFrameV2HostileCounts mirrors the DecodePoints guard: a
// tiny frame claiming huge line/point counts must fail fast without
// allocating.
func TestDecodeFrameV2HostileCounts(t *testing.T) {
	q := Quantizer{Max: vmath.V3(1, 1, 1)}
	// Hand-build: header + 1 geometry, inline, claiming 2^40 points.
	e := encoder{}
	e.u8(CodecV2)
	e.f32(0)
	e.f32(0)
	e.bool(false)
	e.bool(false)
	e.u32(0)
	e.i64(0)
	e.i64(0)
	e.u64(0)
	e.u8(0)
	e.u32(0) // users
	e.u32(0) // rakes
	e.uvarint(1)
	e.uvarint(1) // rake id
	e.u8(geomInline)
	e.uvarint(1) // seq
	seg := encoder{}
	seg.u8(0)
	seg.uvarint(1)       // one line
	seg.uvarint(1 << 40) // claiming a trillion points
	e.uvarint(uint64(len(seg.buf)))
	e.buf = append(e.buf, seg.buf...)
	if _, err := NewFrameDecoder(q).Decode(e.buf); err == nil {
		t.Fatal("hostile point count decoded silently")
	}
}

// TestAppendGeomV2Layout pins the segment byte layout so the format
// cannot drift silently: tool, varint counts, little-endian u16
// triples.
func TestAppendGeomV2Layout(t *testing.T) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	g := Geometry{Rake: 1, Tool: 2, Lines: [][]vmath.Vec3{{vmath.V3(0, 5, 10)}}}
	seg := AppendGeomV2(nil, g, q)
	want := []byte{2, 1, 1}
	want = binary.LittleEndian.AppendUint16(want, 0)
	want = binary.LittleEndian.AppendUint16(want, 32768)
	want = binary.LittleEndian.AppendUint16(want, 65535)
	if !bytes.Equal(seg, want) {
		t.Errorf("segment = %x, want %x", seg, want)
	}
}
