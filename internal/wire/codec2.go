package wire

// Codec v2 ("Wire 2.0") attacks Table 1's bandwidth wall at the
// encoder. Three mechanisms stack:
//
//   - Quantized points: path points ship as three 16-bit fixed-point
//     offsets against the dataset's grid bounding box — 6 bytes/point
//     instead of the paper's 12, with a worst-case round-trip error of
//     half a quantization step per axis (extent/131070, far below half
//     a grid cell for any realistic grid).
//   - Delta frames: each rake's geometry carries a sequence number
//     that changes exactly when its content changes. A per-session
//     encoder remembers which (rake, seq) the peer already holds and
//     replaces unchanged geometry with a tiny reference record; the
//     per-session decoder reassembles full frames from its shadow. A
//     fresh session (or a reconnect, which is a fresh session) starts
//     with an empty shadow, so the first frame is a full keyframe by
//     construction. User and rake state records delta the same way,
//     by content: an entity whose state equals the session shadow
//     ships as id + one flag byte — with a fleet of workstations the
//     user list is most of a steady frame's bytes.
//   - Varint counts: line and point counts — dominated by streakline
//     histories whose per-seed lengths vary frame to frame — use
//     unsigned varints instead of fixed u32s.
//
// The codec is negotiated per session at hello (ProcHello2); v1
// sessions keep receiving the original encoding byte for byte.

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vmath"
)

// Codec version numbers, negotiated at hello.
const (
	// CodecV1 is the original fixed-width encoding (12 bytes/point).
	CodecV1 = 1
	// CodecV2 adds delta frames, quantized points, and varint counts.
	CodecV2 = 2
	// MaxCodec is the newest codec this build speaks.
	MaxCodec = CodecV2
)

// ProcHello2 is the dlib procedure for the codec-negotiating hello:
// payload is a 1-byte requested codec, reply is the accepted codec
// followed by DatasetInfo. Servers predating codec v2 do not register
// it; clients fall back to ProcHello (and codec v1) on a remote error.
const ProcHello2 = "vw.hello2"

// QuantBytes is codec v2's wire cost per path point: three uint16s.
const QuantBytes = 6

// quantSteps is the number of quantization intervals per axis.
const quantSteps = 65535

// Directory record kinds, shared by the user, rake, and geometry
// sections: a reference means "unchanged since I last inlined it to
// you", an inline record carries the full payload.
const (
	geomRef    = 0 // peer already holds this entry; no payload
	geomInline = 1 // full payload follows
)

// EncodeHelloRequest marshals the client's highest supported codec.
func EncodeHelloRequest(codec uint8) []byte { return []byte{codec} }

// DecodeHelloRequest unmarshals a hello request; an empty payload
// means codec v1.
func DecodeHelloRequest(buf []byte) (uint8, error) {
	if len(buf) == 0 {
		return CodecV1, nil
	}
	return buf[0], nil
}

// EncodeHelloReply marshals the accepted codec and the dataset info.
func EncodeHelloReply(codec uint8, info DatasetInfo) []byte {
	return append([]byte{codec}, EncodeDatasetInfo(info)...)
}

// DecodeHelloReply unmarshals a hello reply.
func DecodeHelloReply(buf []byte) (uint8, DatasetInfo, error) {
	if len(buf) < 1 {
		return 0, DatasetInfo{}, fmt.Errorf("wire: empty hello reply")
	}
	info, err := DecodeDatasetInfo(buf[1:])
	return buf[0], info, err
}

// NegotiateCodec returns the codec a server speaking up to max accepts
// for a client requesting req. Unknown (future) client versions settle
// on the server's max; anything at or below v1 settles on v1.
func NegotiateCodec(req, max uint8) uint8 {
	if max < CodecV1 || max > MaxCodec {
		max = MaxCodec
	}
	if req > max {
		return max
	}
	if req < CodecV1 {
		return CodecV1
	}
	return req
}

// --- quantization ----------------------------------------------------

// Quantizer maps physical coordinates to 16-bit fixed point against an
// axis-aligned bounding box — the dataset grid's physical bounds, which
// both ends learn at hello. Points outside the box clamp to its faces;
// a degenerate (flat) axis quantizes to 0 and dequantizes to the axis
// minimum, exactly.
type Quantizer struct {
	Min, Max vmath.Vec3
}

// Quantizer returns the quantizer both ends derive from the dataset
// bounds exchanged at hello.
func (i DatasetInfo) Quantizer() Quantizer {
	return Quantizer{Min: i.BoundsMin, Max: i.BoundsMax}
}

// quant1 maps v into [0, quantSteps] against [lo, hi]. The arithmetic
// runs in float64 so the forward map is exact enough that the
// round-trip error stays within half a quantization step.
func quant1(v, lo, hi float32) uint16 {
	span := float64(hi) - float64(lo)
	if span <= 0 {
		return 0
	}
	t := (float64(v) - float64(lo)) / span
	if t <= 0 {
		return 0
	}
	if t >= 1 {
		return quantSteps
	}
	return uint16(math.Round(t * quantSteps))
}

// dequant1 is the inverse map onto the box.
func dequant1(q uint16, lo, hi float32) float32 {
	span := float64(hi) - float64(lo)
	if span <= 0 {
		return lo
	}
	return float32(float64(lo) + float64(q)/quantSteps*span)
}

// Quant maps a physical point to its quantized triple.
func (q Quantizer) Quant(p vmath.Vec3) (x, y, z uint16) {
	return quant1(p.X, q.Min.X, q.Max.X),
		quant1(p.Y, q.Min.Y, q.Max.Y),
		quant1(p.Z, q.Min.Z, q.Max.Z)
}

// Dequant maps a quantized triple back to physical coordinates.
func (q Quantizer) Dequant(x, y, z uint16) vmath.Vec3 {
	return vmath.Vec3{
		X: dequant1(x, q.Min.X, q.Max.X),
		Y: dequant1(y, q.Min.Y, q.Max.Y),
		Z: dequant1(z, q.Min.Z, q.Max.Z),
	}
}

// RoundTrip returns Dequant(Quant(p)) — what the peer will see for p.
func (q Quantizer) RoundTrip(p vmath.Vec3) vmath.Vec3 {
	x, y, z := q.Quant(p)
	return q.Dequant(x, y, z)
}

// MaxError returns the per-axis worst-case round-trip error for points
// inside the box: half a quantization step, extent/131070. Tests pin
// this against half a grid cell.
func (q Quantizer) MaxError() vmath.Vec3 {
	return vmath.Vec3{
		X: float32((float64(q.Max.X) - float64(q.Min.X)) / (2 * quantSteps)),
		Y: float32((float64(q.Max.Y) - float64(q.Min.Y)) / (2 * quantSteps)),
		Z: float32((float64(q.Max.Z) - float64(q.Min.Z)) / (2 * quantSteps)),
	}
}

// --- varint helpers --------------------------------------------------

func (e *encoder) uvarint(v uint64) {
	e.buf = binary.AppendUvarint(e.buf, v)
}

// uvarint reads one unsigned varint, failing on truncation and on
// overlong/overflowing encodings.
func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.err = fmt.Errorf("wire: bad varint (n=%d)", n)
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

// uvarintCount reads a varint element count for elements of at least
// elemBytes each and requires the remaining buffer to be large enough
// to hold them — the DecodePoints hostile-count guard, varint edition.
func (d *decoder) uvarintCount(max, elemBytes int) int {
	v := d.uvarint()
	if d.err != nil {
		return 0
	}
	if v > uint64(max) {
		d.err = fmt.Errorf("wire: count %d exceeds limit %d", v, max)
		return 0
	}
	n := int(v)
	if n*elemBytes > len(d.buf) {
		d.err = fmt.Errorf("wire: count %d x %d bytes exceeds remaining %d",
			n, elemBytes, len(d.buf))
		return 0
	}
	return n
}

// --- geometry segments -----------------------------------------------

// AppendGeomV2 appends one rake's geometry as a codec-v2 segment:
// tool byte, varint line count, then per line a varint point count and
// 6 quantized bytes per point. The rake id lives in the enclosing
// frame's directory, not the segment.
//
//vw:allow codecparity -- Geometry.Rake rides the frame directory, not the segment; decodeGeomV2 takes it as a parameter
func AppendGeomV2(dst []byte, g Geometry, q Quantizer) []byte {
	e := encoder{buf: dst}
	e.u8(g.Tool)
	e.uvarint(uint64(len(g.Lines)))
	for _, line := range g.Lines {
		e.uvarint(uint64(len(line)))
		for _, p := range line {
			x, y, z := q.Quant(p)
			var b [QuantBytes]byte
			binary.LittleEndian.PutUint16(b[0:], x)
			binary.LittleEndian.PutUint16(b[2:], y)
			binary.LittleEndian.PutUint16(b[4:], z)
			e.buf = append(e.buf, b[:]...)
		}
	}
	return e.buf
}

// decodeGeomV2 parses one segment for rake into a Geometry, counting
// decoded points against the caller's remaining point budget.
func decodeGeomV2(buf []byte, rake int32, q Quantizer, budget int) (Geometry, int, error) {
	d := decoder{buf: buf}
	g := Geometry{Rake: rake}
	g.Tool = d.u8()
	nLines := d.uvarintCount(maxEntities, 1)
	if d.err != nil {
		return Geometry{}, 0, d.err
	}
	g.Lines = make([][]vmath.Vec3, nLines)
	var total int
	for l := range g.Lines {
		nPts := d.uvarintCount(maxPoints, QuantBytes)
		if d.err != nil {
			return Geometry{}, 0, d.err
		}
		total += nPts
		if total > budget {
			return Geometry{}, 0, d.errf("too many total points")
		}
		line := make([]vmath.Vec3, nPts)
		for p := range line {
			b := d.take(QuantBytes)
			if b == nil {
				return Geometry{}, 0, d.err
			}
			line[p] = q.Dequant(
				binary.LittleEndian.Uint16(b[0:]),
				binary.LittleEndian.Uint16(b[2:]),
				binary.LittleEndian.Uint16(b[4:]))
		}
		g.Lines[l] = line
	}
	if len(d.buf) != 0 {
		return Geometry{}, 0, fmt.Errorf("wire: %d trailing bytes in geometry segment", len(d.buf))
	}
	return g, total, nil
}

// AppendToolGeomV2 appends one shared tool's geometry as a codec-v2
// segment: tool byte, varint point count, 6 quantized bytes per point.
func AppendToolGeomV2(dst []byte, g ToolGeom, q Quantizer) []byte {
	e := encoder{buf: dst}
	e.u8(g.Tool)
	e.uvarint(uint64(len(g.Points)))
	for _, p := range g.Points {
		x, y, z := q.Quant(p)
		var b [QuantBytes]byte
		binary.LittleEndian.PutUint16(b[0:], x)
		binary.LittleEndian.PutUint16(b[2:], y)
		binary.LittleEndian.PutUint16(b[4:], z)
		e.buf = append(e.buf, b[:]...)
	}
	return e.buf
}

// decodeToolGeomV2 parses one tool segment, counting decoded points
// against the caller's remaining point budget.
func decodeToolGeomV2(buf []byte, q Quantizer, budget int) (ToolGeom, int, error) {
	d := decoder{buf: buf}
	var g ToolGeom
	g.Tool = d.u8()
	nPts := d.uvarintCount(maxPoints, QuantBytes)
	if d.err != nil {
		return ToolGeom{}, 0, d.err
	}
	if nPts > budget {
		return ToolGeom{}, 0, d.errf("too many tool points")
	}
	pts := make([]vmath.Vec3, nPts)
	for p := range pts {
		b := d.take(QuantBytes)
		if b == nil {
			return ToolGeom{}, 0, d.err
		}
		pts[p] = q.Dequant(
			binary.LittleEndian.Uint16(b[0:]),
			binary.LittleEndian.Uint16(b[2:]),
			binary.LittleEndian.Uint16(b[4:]))
	}
	g.Points = pts
	if len(d.buf) != 0 {
		return ToolGeom{}, 0, fmt.Errorf("wire: %d trailing bytes in tool segment", len(d.buf))
	}
	return g, nPts, nil
}

// --- frame encoder ---------------------------------------------------

// FrameEncoder encodes codec-v2 frames for one session. It shadows
// which (rake, sequence) pairs the peer holds — every geometry it has
// inlined since the last Reset — and replaces unchanged rakes with
// reference records. One encoder must serve exactly one ordered frame
// stream; a reconnecting peer gets a fresh encoder (server sessions
// die with their connection), which forces a full keyframe.
type FrameEncoder struct {
	// Q quantizes points; both ends must build it from the same hello
	// bounds.
	Q Quantizer

	// LastInline and LastRef report the geometry directory composition
	// of the most recent AppendFrame, for stats.
	LastInline, LastRef int

	shadow  map[int32]uint64
	tools   map[uint8]uint64
	users   map[int64]UserState
	rakes   map[int32]RakeState
	scratch []byte
}

// NewFrameEncoder returns an encoder with an empty shadow.
func NewFrameEncoder(q Quantizer) *FrameEncoder {
	return &FrameEncoder{
		Q:      q,
		shadow: make(map[int32]uint64),
		tools:  make(map[uint8]uint64),
		users:  make(map[int64]UserState),
		rakes:  make(map[int32]RakeState),
	}
}

// Reset forgets the peer's shadow; the next frame is a full keyframe.
func (e *FrameEncoder) Reset() {
	clear(e.shadow)
	clear(e.tools)
	clear(e.users)
	clear(e.rakes)
}

// AppendFrame appends the codec-v2 encoding of r for this session.
// seqs is aligned with r.Geometry: seqs[i] must change exactly when
// that rake's geometry content changes (a zero seq disables delta
// tracking for the entry and always inlines it). segs, when non-nil,
// supplies pre-encoded segment bytes aligned with r.Geometry — the
// server's encode-once segment cache; nil entries are encoded fresh.
// toolSeqs and toolSegs play the same roles for r.Tools.Geoms when the
// frame carries a tool section.
func (e *FrameEncoder) AppendFrame(dst []byte, r FrameReply, seqs []uint64, segs [][]byte, toolSeqs []uint64, toolSegs [][]byte) []byte {
	e.LastInline, e.LastRef = 0, 0
	enc := encoder{buf: dst}
	enc.u8(CodecV2)
	enc.f32(r.Time.Current)
	enc.f32(r.Time.Speed)
	enc.bool(r.Time.Playing)
	enc.bool(r.Time.Loop)
	enc.u32(r.Time.NumSteps)
	enc.i64(r.ComputeNanos)
	enc.i64(r.LoadNanos)
	enc.u64(r.Round)
	enc.u8(r.Degraded)

	enc.uvarint(uint64(len(r.Users)))
	for _, u := range r.Users {
		enc.i64(u.ID)
		if prev, ok := e.users[u.ID]; ok && prev == u {
			enc.u8(geomRef)
			continue
		}
		enc.u8(geomInline)
		enc.mat4(u.Head)
		enc.vec3(u.Hand)
		enc.u8(u.Gesture)
		e.users[u.ID] = u
	}
	pruneUsers(e.users, r.Users)
	enc.uvarint(uint64(len(r.Rakes)))
	for _, rk := range r.Rakes {
		enc.i32(rk.ID)
		if prev, ok := e.rakes[rk.ID]; ok && prev == rk {
			enc.u8(geomRef)
			continue
		}
		enc.u8(geomInline)
		enc.vec3(rk.P0)
		enc.vec3(rk.P1)
		enc.u32(rk.NumSeeds)
		enc.u8(rk.Tool)
		enc.i64(rk.Holder)
		enc.u8(rk.Grab)
		e.rakes[rk.ID] = rk
	}
	pruneRakes(e.rakes, r.Rakes)

	enc.uvarint(uint64(len(r.Geometry)))
	for i := range r.Geometry {
		g := &r.Geometry[i]
		var seq uint64
		if seqs != nil {
			seq = seqs[i]
		}
		enc.uvarint(uint64(uint32(g.Rake)))
		if seq != 0 && e.shadow[g.Rake] == seq {
			enc.u8(geomRef)
			enc.uvarint(seq)
			e.LastRef++
			continue
		}
		enc.u8(geomInline)
		enc.uvarint(seq)
		var seg []byte
		if segs != nil && segs[i] != nil {
			seg = segs[i]
		} else {
			e.scratch = AppendGeomV2(e.scratch[:0], *g, e.Q)
			seg = e.scratch
		}
		enc.uvarint(uint64(len(seg)))
		enc.buf = append(enc.buf, seg...)
		if seq != 0 {
			e.shadow[g.Rake] = seq
		} else {
			delete(e.shadow, g.Rake)
		}
		e.LastInline++
	}
	pruneShadow(e.shadow, r.Geometry)

	// Optional trailing tool section, mirroring codec v1: presence is
	// "bytes remain after the geometry directory". Tool states are
	// small and always inline; tool geometry deltas exactly like rake
	// geometry, shadowed by tool kind.
	if r.Tools != nil {
		enc.toolState(r.Tools.Iso)
		enc.toolState(r.Tools.Plane)
		enc.toolState(r.Tools.Vortex)
		enc.uvarint(uint64(len(r.Tools.Geoms)))
		for i := range r.Tools.Geoms {
			g := &r.Tools.Geoms[i]
			var seq uint64
			if toolSeqs != nil {
				seq = toolSeqs[i]
			}
			enc.u8(g.Tool)
			if seq != 0 && e.tools[g.Tool] == seq {
				enc.u8(geomRef)
				enc.uvarint(seq)
				e.LastRef++
				continue
			}
			enc.u8(geomInline)
			enc.uvarint(seq)
			var seg []byte
			if toolSegs != nil && toolSegs[i] != nil {
				seg = toolSegs[i]
			} else {
				e.scratch = AppendToolGeomV2(e.scratch[:0], *g, e.Q)
				seg = e.scratch
			}
			enc.uvarint(uint64(len(seg)))
			enc.buf = append(enc.buf, seg...)
			if seq != 0 {
				e.tools[g.Tool] = seq
			} else {
				delete(e.tools, g.Tool)
			}
			e.LastInline++
		}
		pruneToolShadow(e.tools, r.Tools.Geoms)
	}
	return enc.buf
}

// pruneToolShadow is pruneShadow for the tool-geometry shadow.
func pruneToolShadow[V any](shadow map[uint8]V, geoms []ToolGeom) {
	if len(shadow) <= len(geoms) {
		return
	}
	for id := range shadow {
		found := false
		for i := range geoms {
			if geoms[i].Tool == id {
				found = true
				break
			}
		}
		if !found {
			delete(shadow, id)
		}
	}
}

// pruneUsers drops user-shadow entries for users absent from the
// frame, mirroring pruneShadow: both ends prune identically, so a
// departed-then-returned user cannot be wrongly referenced.
func pruneUsers[V any](shadow map[int64]V, users []UserState) {
	if len(shadow) <= len(users) {
		return
	}
	for id := range shadow {
		found := false
		for i := range users {
			if users[i].ID == id {
				found = true
				break
			}
		}
		if !found {
			delete(shadow, id)
		}
	}
}

// pruneRakes is pruneUsers for the rake-state shadow.
func pruneRakes[V any](shadow map[int32]V, rakes []RakeState) {
	if len(shadow) <= len(rakes) {
		return
	}
	for id := range shadow {
		found := false
		for i := range rakes {
			if rakes[i].ID == id {
				found = true
				break
			}
		}
		if !found {
			delete(shadow, id)
		}
	}
}

// pruneShadow drops shadow entries for rakes absent from the frame:
// the peer prunes identically, so a removed-then-readded rake cannot
// be wrongly referenced. Rake counts are small; the linear membership
// scan beats allocating a set.
func pruneShadow[V any](shadow map[int32]V, geoms []Geometry) {
	if len(shadow) <= len(geoms) {
		return
	}
	for id := range shadow {
		found := false
		for i := range geoms {
			if geoms[i].Rake == id {
				found = true
				break
			}
		}
		if !found {
			delete(shadow, id)
		}
	}
}

// --- frame decoder ---------------------------------------------------

// decodedGeom is one shadow entry: the sequence number the geometry
// was inlined under and the decoded result.
type decodedGeom struct {
	seq uint64
	geo Geometry
}

// FrameDecoder reassembles full FrameReply values from one session's
// codec-v2 stream, holding the decoded geometry shadow that reference
// records resolve against. After a decode error the shadow may be
// stale; Reset it (and resync with the peer — in practice, redial) or
// drop the decoder.
type FrameDecoder struct {
	// Q dequantizes points; both ends must build it from the same
	// hello bounds.
	Q Quantizer

	shadow map[int32]decodedGeom
	tools  map[uint8]decodedToolGeom
	users  map[int64]UserState
	rakes  map[int32]RakeState
}

// decodedToolGeom is one tool-shadow entry.
type decodedToolGeom struct {
	seq uint64
	geo ToolGeom
}

// NewFrameDecoder returns a decoder with an empty shadow.
func NewFrameDecoder(q Quantizer) *FrameDecoder {
	return &FrameDecoder{
		Q:      q,
		shadow: make(map[int32]decodedGeom),
		tools:  make(map[uint8]decodedToolGeom),
		users:  make(map[int64]UserState),
		rakes:  make(map[int32]RakeState),
	}
}

// Reset forgets all shadowed state (reconnect resync).
func (d *FrameDecoder) Reset() {
	clear(d.shadow)
	clear(d.tools)
	clear(d.users)
	clear(d.rakes)
}

// Decode unmarshals one codec-v2 frame, resolving reference records
// against the shadow and folding inlined segments into it.
func (d *FrameDecoder) Decode(buf []byte) (FrameReply, error) {
	dec := decoder{buf: buf}
	if v := dec.u8(); dec.err == nil && v != CodecV2 {
		return FrameReply{}, fmt.Errorf("wire: frame codec %d, want %d", v, CodecV2)
	}
	var r FrameReply
	r.Time.Current = dec.f32()
	r.Time.Speed = dec.f32()
	r.Time.Playing = dec.bool()
	r.Time.Loop = dec.bool()
	r.Time.NumSteps = dec.u32()
	r.ComputeNanos = dec.i64()
	r.LoadNanos = dec.i64()
	r.Round = dec.u64()
	r.Degraded = dec.u8()

	nUsers := dec.uvarintCount(maxEntities, 9) // id + kind minimum
	if dec.err != nil {
		return FrameReply{}, dec.err
	}
	r.Users = make([]UserState, nUsers)
	for i := range r.Users {
		u := &r.Users[i]
		u.ID = dec.i64()
		switch kind := dec.u8(); {
		case dec.err != nil:
			return FrameReply{}, dec.err
		case kind == geomRef:
			prev, ok := d.users[u.ID]
			if !ok {
				return FrameReply{}, fmt.Errorf("wire: reference to unknown user %d", u.ID)
			}
			*u = prev
		case kind == geomInline:
			u.Head = dec.mat4()
			u.Hand = dec.vec3()
			u.Gesture = dec.u8()
			if dec.err != nil {
				return FrameReply{}, dec.err
			}
			d.users[u.ID] = *u
		default:
			return FrameReply{}, fmt.Errorf("wire: unknown user record kind %d", kind)
		}
	}
	pruneUsers(d.users, r.Users)
	nRakes := dec.uvarintCount(maxEntities, 5) // id + kind minimum
	if dec.err != nil {
		return FrameReply{}, dec.err
	}
	r.Rakes = make([]RakeState, nRakes)
	for i := range r.Rakes {
		rk := &r.Rakes[i]
		rk.ID = dec.i32()
		switch kind := dec.u8(); {
		case dec.err != nil:
			return FrameReply{}, dec.err
		case kind == geomRef:
			prev, ok := d.rakes[rk.ID]
			if !ok {
				return FrameReply{}, fmt.Errorf("wire: reference to unknown rake %d", rk.ID)
			}
			*rk = prev
		case kind == geomInline:
			rk.P0 = dec.vec3()
			rk.P1 = dec.vec3()
			rk.NumSeeds = dec.u32()
			rk.Tool = dec.u8()
			rk.Holder = dec.i64()
			rk.Grab = dec.u8()
			if dec.err != nil {
				return FrameReply{}, dec.err
			}
			d.rakes[rk.ID] = *rk
		default:
			return FrameReply{}, fmt.Errorf("wire: unknown rake record kind %d", kind)
		}
	}
	pruneRakes(d.rakes, r.Rakes)

	nGeom := dec.uvarintCount(maxEntities, 3) // rake + kind + seq minimum
	if dec.err != nil {
		return FrameReply{}, dec.err
	}
	r.Geometry = make([]Geometry, 0, nGeom)
	var total int
	for i := 0; i < nGeom; i++ {
		rake := int32(uint32(dec.uvarint()))
		kind := dec.u8()
		seq := dec.uvarint()
		if dec.err != nil {
			return FrameReply{}, dec.err
		}
		switch kind {
		case geomRef:
			cg, ok := d.shadow[rake]
			if !ok || cg.seq != seq {
				return FrameReply{}, fmt.Errorf(
					"wire: reference to unknown geometry (rake %d seq %d)", rake, seq)
			}
			total += cg.geo.NumPoints()
			if total > maxPoints {
				return FrameReply{}, fmt.Errorf("wire: too many total points")
			}
			r.Geometry = append(r.Geometry, cg.geo)
		case geomInline:
			segLen := dec.uvarintCount(len(dec.buf), 1)
			seg := dec.take(segLen)
			if dec.err != nil {
				return FrameReply{}, dec.err
			}
			g, pts, err := decodeGeomV2(seg, rake, d.Q, maxPoints-total)
			if err != nil {
				return FrameReply{}, err
			}
			total += pts
			if seq != 0 {
				d.shadow[rake] = decodedGeom{seq: seq, geo: g}
			} else {
				delete(d.shadow, rake)
			}
			r.Geometry = append(r.Geometry, g)
		default:
			return FrameReply{}, fmt.Errorf("wire: unknown geometry record kind %d", kind)
		}
	}
	if len(dec.buf) != 0 {
		// Bytes after the geometry directory are the optional tool
		// section (mirroring codec v1's presence-by-remaining-bytes).
		t, err := d.decodeToolSection(&dec, maxPoints-total)
		if err != nil {
			return FrameReply{}, err
		}
		r.Tools = t
	}
	if len(dec.buf) != 0 {
		return FrameReply{}, fmt.Errorf("wire: %d trailing bytes in frame", len(dec.buf))
	}
	pruneShadow(d.shadow, r.Geometry)
	return r, dec.err
}

// decodeToolSection parses the codec-v2 tool section, resolving
// geometry references against the tool shadow.
func (d *FrameDecoder) decodeToolSection(dec *decoder, budget int) (*ToolsReply, error) {
	var t ToolsReply
	t.Iso = dec.toolState()
	t.Plane = dec.toolState()
	t.Vortex = dec.toolState()
	nGeoms := dec.uvarintCount(maxToolGeoms, 3) // tool + kind + seq minimum
	if dec.err != nil {
		return nil, dec.err
	}
	t.Geoms = make([]ToolGeom, 0, nGeoms)
	var total int
	for i := 0; i < nGeoms; i++ {
		tool := dec.u8()
		kind := dec.u8()
		seq := dec.uvarint()
		if dec.err != nil {
			return nil, dec.err
		}
		switch kind {
		case geomRef:
			cg, ok := d.tools[tool]
			if !ok || cg.seq != seq {
				return nil, fmt.Errorf(
					"wire: reference to unknown tool geometry (tool %d seq %d)", tool, seq)
			}
			total += len(cg.geo.Points)
			if total > budget {
				return nil, fmt.Errorf("wire: too many tool points")
			}
			t.Geoms = append(t.Geoms, cg.geo)
		case geomInline:
			segLen := dec.uvarintCount(len(dec.buf), 1)
			seg := dec.take(segLen)
			if dec.err != nil {
				return nil, dec.err
			}
			g, pts, err := decodeToolGeomV2(seg, d.Q, budget-total)
			if err != nil {
				return nil, err
			}
			if g.Tool != tool {
				return nil, fmt.Errorf("wire: tool segment kind %d under directory entry %d", g.Tool, tool)
			}
			total += pts
			if seq != 0 {
				d.tools[tool] = decodedToolGeom{seq: seq, geo: g}
			} else {
				delete(d.tools, tool)
			}
			t.Geoms = append(t.Geoms, g)
		default:
			return nil, fmt.Errorf("wire: unknown tool record kind %d", kind)
		}
	}
	pruneToolShadow(d.tools, t.Geoms)
	return &t, nil
}
