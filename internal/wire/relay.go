package wire

// The relay protocol is the upstream leg of the cluster tier: a relay
// node (internal/relay) holds one dlib session per downstream
// workstation — preserving per-user identity, FCFS lock ownership, and
// the per-session round-advance rule — but the frame *content* ships
// from the origin at most once per round per relay. Every downstream
// frame call becomes one ProcFrameRelay call upstream carrying the
// workstation's ClientUpdate verbatim plus the relay's cache state
// (the round it holds and the codec-v2 segments it holds); the origin
// answers either a few-byte "round unchanged" marker or a full payload
// delta-encoded against that cache state.
//
// The cache state travels in the request, so the origin keeps no
// per-relay shadow: the exchange cannot desync across relay restarts
// or fault-injected reconnects — a relay with an empty cache simply
// sends LastRound 0 and an empty shadow and receives a full payload.
//
// A full payload carries the origin's encoded codec-v1 round buffer
// verbatim (relays fan those bytes out to v1 workstations untouched,
// and decode them once for the round's header/user/rake state) plus,
// when the relay asked for them, a geometry directory aligned with the
// frame's geometry list: per rake the codec-v2 sequence number and
// either a reference (the relay already holds that segment) or the
// origin's cached quantized segment bytes verbatim. Shipping encoded
// segments rather than re-quantizing decoded floats is what keeps
// relay-delivered v2 frames byte-identical to direct-connect frames.

import "fmt"

// ProcFrameRelay is the relay-to-upstream frame exchange. Both the
// compute server and relay nodes register it, so relays chain.
const ProcFrameRelay = "vw.framerelay"

// Relay reply kinds.
const (
	relayMarker = 0 // round unchanged since the relay's LastRound
	relayFull   = 1 // full round payload follows
)

// relayWantSegs is the request flag asking for the geometry directory.
const relayWantSegs = 1

// RelayShadowEntry is one (rake, sequence) pair the relay's segment
// cache holds.
type RelayShadowEntry struct {
	Rake int32
	Seq  uint64
}

// RelayFrameRequest is one downstream workstation's frame call as the
// relay forwards it upstream.
type RelayFrameRequest struct {
	// WantSegs asks for the codec-v2 geometry directory; a relay sets
	// it as soon as any of its downstream sessions negotiated v2.
	WantSegs bool
	// LastRound is the round the relay's cache currently holds from
	// this upstream (0 = empty cache, never matches a live round).
	LastRound uint64
	// Update is the workstation's encoded ClientUpdate, verbatim.
	Update []byte
	// Shadow lists the codec-v2 segments the relay holds; the origin
	// replaces matching directory entries with references.
	Shadow []RelayShadowEntry
}

// ShadowHas reports whether the request's shadow holds (rake, seq).
// Shadows are a handful of entries; the linear scan beats a map.
func (r *RelayFrameRequest) ShadowHas(rake int32, seq uint64) bool {
	for _, e := range r.Shadow {
		if e.Rake == rake && e.Seq == seq {
			return true
		}
	}
	return false
}

// RelaySegment is one geometry-directory entry of a full relay reply,
// aligned with the round's FrameReply.Geometry.
type RelaySegment struct {
	Rake int32
	Seq  uint64
	// Inline carries the quantized segment bytes; a non-inline entry
	// references a segment the request's shadow proved the relay holds.
	Inline bool
	Seg    []byte
}

// RelayFrameReply is the upstream answer: a marker when the relay's
// cached round is still current, or the full round payload.
type RelayFrameReply struct {
	Full  bool
	Round uint64
	// Frame is the origin's codec-v1 round buffer, verbatim (full
	// replies only).
	Frame []byte
	// HasDir marks a geometry directory (requests with WantSegs).
	HasDir bool
	Dir    []RelaySegment
}

// AppendRelayFrameRequest appends the wire encoding of req.
func AppendRelayFrameRequest(dst []byte, req RelayFrameRequest) []byte {
	e := encoder{buf: dst}
	var flags uint8
	if req.WantSegs {
		flags |= relayWantSegs
	}
	e.u8(flags)
	e.u64(req.LastRound)
	e.uvarint(uint64(len(req.Update)))
	e.buf = append(e.buf, req.Update...)
	e.uvarint(uint64(len(req.Shadow)))
	for _, s := range req.Shadow {
		e.uvarint(uint64(uint32(s.Rake)))
		e.uvarint(s.Seq)
	}
	return e.buf
}

// DecodeRelayFrameRequest unmarshals a relay frame request. Update
// aliases buf.
func DecodeRelayFrameRequest(buf []byte) (RelayFrameRequest, error) {
	d := decoder{buf: buf}
	var req RelayFrameRequest
	flags := d.u8()
	req.WantSegs = flags&relayWantSegs != 0
	req.LastRound = d.u64()
	n := d.uvarintCount(len(d.buf), 1)
	req.Update = d.take(n)
	nShadow := d.uvarintCount(maxEntities, 2)
	if d.err != nil {
		return RelayFrameRequest{}, d.err
	}
	req.Shadow = make([]RelayShadowEntry, nShadow)
	for i := range req.Shadow {
		req.Shadow[i].Rake = int32(uint32(d.uvarint()))
		req.Shadow[i].Seq = d.uvarint()
	}
	if d.err != nil {
		return RelayFrameRequest{}, d.err
	}
	if len(d.buf) != 0 {
		return RelayFrameRequest{}, fmt.Errorf("wire: %d trailing bytes in relay request", len(d.buf))
	}
	return req, nil
}

// AppendRelayMarker appends a round-unchanged marker reply.
//
//vw:allow codecparity -- markers are one arm of the reply union; DecodeRelayFrameReply decodes them
func AppendRelayMarker(dst []byte, round uint64) []byte {
	e := encoder{buf: dst}
	e.u8(relayMarker)
	e.u64(round)
	return e.buf
}

// AppendRelayFrameReply appends the wire encoding of rep (marker or
// full, by rep.Full).
func AppendRelayFrameReply(dst []byte, rep RelayFrameReply) []byte {
	if !rep.Full {
		return AppendRelayMarker(dst, rep.Round)
	}
	e := encoder{buf: dst}
	e.u8(relayFull)
	e.u64(rep.Round)
	e.uvarint(uint64(len(rep.Frame)))
	e.buf = append(e.buf, rep.Frame...)
	if !rep.HasDir {
		e.u8(0)
		return e.buf
	}
	e.u8(1)
	e.uvarint(uint64(len(rep.Dir)))
	for _, s := range rep.Dir {
		e.uvarint(uint64(uint32(s.Rake)))
		e.uvarint(s.Seq)
		if !s.Inline {
			e.u8(geomRef)
			continue
		}
		e.u8(geomInline)
		e.uvarint(uint64(len(s.Seg)))
		e.buf = append(e.buf, s.Seg...)
	}
	return e.buf
}

// DecodeRelayFrameReply unmarshals a relay reply. Frame and segment
// bytes alias buf, so the caller may adopt buf for its cache.
func DecodeRelayFrameReply(buf []byte) (RelayFrameReply, error) {
	d := decoder{buf: buf}
	var rep RelayFrameReply
	kind := d.u8()
	rep.Round = d.u64()
	if d.err != nil {
		return RelayFrameReply{}, d.err
	}
	switch kind {
	case relayMarker:
		if len(d.buf) != 0 {
			return RelayFrameReply{}, fmt.Errorf("wire: %d trailing bytes in relay marker", len(d.buf))
		}
		return rep, nil
	case relayFull:
	default:
		return RelayFrameReply{}, fmt.Errorf("wire: unknown relay reply kind %d", kind)
	}
	rep.Full = true
	n := d.uvarintCount(len(d.buf), 1)
	rep.Frame = d.take(n)
	hasDir := d.u8()
	if d.err != nil {
		return RelayFrameReply{}, d.err
	}
	if hasDir == 0 {
		if len(d.buf) != 0 {
			return RelayFrameReply{}, fmt.Errorf("wire: %d trailing bytes in relay reply", len(d.buf))
		}
		return rep, nil
	}
	rep.HasDir = true
	nDir := d.uvarintCount(maxEntities, 3)
	if d.err != nil {
		return RelayFrameReply{}, d.err
	}
	rep.Dir = make([]RelaySegment, nDir)
	for i := range rep.Dir {
		s := &rep.Dir[i]
		s.Rake = int32(uint32(d.uvarint()))
		s.Seq = d.uvarint()
		switch k := d.u8(); {
		case d.err != nil:
			return RelayFrameReply{}, d.err
		case k == geomRef:
		case k == geomInline:
			s.Inline = true
			segLen := d.uvarintCount(len(d.buf), 1)
			s.Seg = d.take(segLen)
			if d.err != nil {
				return RelayFrameReply{}, d.err
			}
		default:
			return RelayFrameReply{}, fmt.Errorf("wire: unknown relay segment kind %d", k)
		}
	}
	if len(d.buf) != 0 {
		return RelayFrameReply{}, fmt.Errorf("wire: %d trailing bytes in relay reply", len(d.buf))
	}
	return rep, nil
}
