// Package wire defines the windtunnel protocol spoken over dlib
// between workstations and the remote host (§5.1): upstream, the user
// commands that affect the virtual environment (head pose, hand pose
// and gestures, rake operations, time control); downstream, the
// environment state and the computed visualization geometry as "arrays
// of floating point vectors in three dimensions" at 12 bytes per
// point — the encoding whose bandwidth requirements Table 1 tabulates.
//
//vw:deterministic
//vw:wire
package wire

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/vmath"
)

// PointBytes is the paper's wire cost per path point: three float32s.
const PointBytes = 12

// ProcFrame is the dlib procedure name of the once-per-frame exchange:
// payload ClientUpdate, reply FrameReply.
const ProcFrame = "vw.frame"

// ProcHello is the dlib procedure returning DatasetInfo.
const ProcHello = "vw.hello"

// ProcWhoAmI is the dlib procedure returning the caller's session id
// as 8 little-endian bytes, so a workstation can filter its own
// presence glyph out of the shared user list.
const ProcWhoAmI = "vw.whoami"

// CmdKind enumerates user commands.
type CmdKind uint8

const (
	// CmdAddRake creates a rake (P0, P1, NumSeeds, Tool).
	CmdAddRake CmdKind = iota + 1
	// CmdRemoveRake deletes rake Rake.
	CmdRemoveRake
	// CmdGrab grabs rake Rake at grab point Grab.
	CmdGrab
	// CmdRelease releases rake Rake.
	CmdRelease
	// CmdMove moves the grabbed point of rake Rake to Pos.
	CmdMove
	// CmdSetSeeds sets rake Rake's seed count to NumSeeds.
	CmdSetSeeds
	// CmdSetPlaying starts (Flag=1) or stops playback.
	CmdSetPlaying
	// CmdSetSpeed sets playback speed to Value timesteps/frame.
	CmdSetSpeed
	// CmdSeek jumps playback to time Value.
	CmdSeek
	// CmdSetLoop sets wrap-at-ends to Flag.
	CmdSetLoop
	// CmdSetTool changes rake Rake's visualization tool to Tool.
	CmdSetTool
	// CmdSteerGrab grabs the live-steering lock (FCFS, like rakes).
	CmdSteerGrab
	// CmdSteerRelease releases the live-steering lock.
	CmdSteerRelease
	// CmdSteer sets all three steering parameters atomically:
	// P0 = (inlet velocity, Reynolds number, cylinder taper ratio).
	// One command carries the whole triple so a change can never be
	// half-applied, no matter where a connection dies.
	CmdSteer
	// CmdIsoGrab grabs the shared isosurface tool's lock (FCFS).
	CmdIsoGrab
	// CmdIsoSet sets the isosurface tool atomically: Flag = enabled,
	// Value = the speed level extracted. A free lock is implicitly
	// grabbed for the call.
	CmdIsoSet
	// CmdIsoRelease releases the isosurface lock.
	CmdIsoRelease
	// CmdPlaneGrab grabs the shared cutting-plane tool's lock (FCFS).
	CmdPlaneGrab
	// CmdPlaneMove moves the cutting plane atomically: Flag = enabled,
	// Grab = the computational axis cut across (0=i, 1=j, 2=k), Value =
	// the fractional position along that axis in [0,1]. A free lock is
	// implicitly grabbed for the call.
	CmdPlaneMove
	// CmdPlaneRelease releases the cutting-plane lock.
	CmdPlaneRelease
	// CmdVortexToggle sets the vortex-core extractor atomically: Flag =
	// enabled, Value = the Q-criterion threshold. There is no separate
	// grab/release pair — toggles are one-shot — but the server still
	// enforces the FCFS lock via implicit grab-for-call.
	CmdVortexToggle
)

// Command is one user command. Unused fields are zero.
type Command struct {
	Kind     CmdKind
	Rake     int32
	Grab     uint8
	Tool     uint8
	NumSeeds uint32
	Flag     uint8
	Value    float32
	P0, P1   vmath.Vec3
	Pos      vmath.Vec3
}

// ClientUpdate is the once-per-frame upstream message.
type ClientUpdate struct {
	Head     vmath.Mat4
	Hand     vmath.Vec3
	Gesture  uint8
	Commands []Command
}

// RakeState mirrors env.RakeSnapshot on the wire.
type RakeState struct {
	ID       int32
	P0, P1   vmath.Vec3
	NumSeeds uint32
	Tool     uint8
	Holder   int64
	Grab     uint8
}

// UserState is another participant's pose.
type UserState struct {
	ID      int64
	Head    vmath.Mat4
	Hand    vmath.Vec3
	Gesture uint8
}

// Geometry is the computed visualization for one rake: a set of
// polylines (streamlines/paths) or per-seed smoke filaments
// (streaklines), all in physical coordinates.
type Geometry struct {
	Rake  int32
	Tool  uint8
	Lines [][]vmath.Vec3
}

// NumPoints returns the total point count across lines.
func (g Geometry) NumPoints() int {
	var n int
	for _, l := range g.Lines {
		n += len(l)
	}
	return n
}

// TimeStatus mirrors env.TimeState on the wire.
type TimeStatus struct {
	Current  float32
	Speed    float32
	Playing  bool
	Loop     bool
	NumSteps uint32
}

// FrameReply is the downstream message: full environment state plus
// geometry, enough for any workstation to render the shared scene.
type FrameReply struct {
	Time         TimeStatus
	Users        []UserState
	Rakes        []RakeState
	Geometry     []Geometry
	ComputeNanos int64 // server-side visualization compute time
	LoadNanos    int64 // server-side timestep load time (disk regime)
	// Round identifies the server computation round this reply's
	// content came from. All sessions served within one round receive
	// the same Round (and byte-identical payloads — the encode-once
	// fan-out); a workstation seeing an unchanged Round knows the
	// shared scene did not change.
	Round uint64
	// Degraded reports the frame-budget governor's load-shedding
	// decision for this round: 0 means full fidelity, 1..255 scales
	// with the fraction of integration work shed to hold the frame
	// budget (255 ~ everything clamped to the floor). Clients render a
	// "degraded" cue when it is non-zero.
	Degraded uint8
	// Tools carries the shared field-diagnostic tools (isosurface,
	// cutting plane, vortex cores) when any has ever been touched; nil
	// otherwise. On the wire the section is optional-and-trailing in
	// both codecs, so servers that never activate a tool emit frames
	// byte-identical to builds that predate it.
	Tools *ToolsReply
}

// TotalPoints returns the point count across all geometry, the
// quantity Table 1 prices.
func (r FrameReply) TotalPoints() int {
	var n int
	for _, g := range r.Geometry {
		n += g.NumPoints()
	}
	return n
}

// DatasetInfo describes the dataset the server is holding.
type DatasetInfo struct {
	NI, NJ, NK uint32
	NumSteps   uint32
	DT         float32
	BoundsMin  vmath.Vec3
	BoundsMax  vmath.Vec3
}

// --- encoding helpers -------------------------------------------------

type encoder struct {
	buf []byte
}

func (e *encoder) u8(v uint8)    { e.buf = append(e.buf, v) }
func (e *encoder) u32(v uint32)  { e.buf = binary.LittleEndian.AppendUint32(e.buf, v) }
func (e *encoder) i32(v int32)   { e.u32(uint32(v)) }
func (e *encoder) u64(v uint64)  { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *encoder) i64(v int64)   { e.u64(uint64(v)) }
func (e *encoder) f32(v float32) { e.u32(math.Float32bits(v)) }
func (e *encoder) vec3(v vmath.Vec3) {
	e.f32(v.X)
	e.f32(v.Y)
	e.f32(v.Z)
}
func (e *encoder) mat4(m vmath.Mat4) {
	for _, v := range m {
		e.f32(v)
	}
}
func (e *encoder) bool(b bool) {
	if b {
		e.u8(1)
	} else {
		e.u8(0)
	}
}

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if len(d.buf) < n {
		d.err = fmt.Errorf("wire: truncated message (need %d, have %d)", n, len(d.buf))
		return nil
	}
	out := d.buf[:n]
	d.buf = d.buf[n:]
	return out
}

func (d *decoder) u8() uint8 {
	b := d.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (d *decoder) u32() uint32 {
	b := d.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (d *decoder) i32() int32 { return int32(d.u32()) }
func (d *decoder) f32() float32 {
	return math.Float32frombits(d.u32())
}

func (d *decoder) u64() uint64 {
	b := d.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (d *decoder) i64() int64 { return int64(d.u64()) }

func (d *decoder) vec3() vmath.Vec3 {
	return vmath.Vec3{X: d.f32(), Y: d.f32(), Z: d.f32()}
}

func (d *decoder) mat4() vmath.Mat4 {
	var m vmath.Mat4
	for i := range m {
		m[i] = d.f32()
	}
	return m
}

func (d *decoder) bool() bool { return d.u8() != 0 }

// count reads a u32 length and guards it against absurd values so a
// corrupt message cannot force a huge allocation.
func (d *decoder) count(max int) int {
	n := int(d.u32())
	if d.err == nil && (n < 0 || n > max) {
		d.err = fmt.Errorf("wire: count %d exceeds limit %d", n, max)
		return 0
	}
	return n
}

// countSized reads a u32 element count for elements of elemBytes each
// and additionally requires the remaining buffer to be large enough to
// hold them, so a tiny corrupt message cannot force a huge allocation.
func (d *decoder) countSized(max, elemBytes int) int {
	n := d.count(max)
	if d.err == nil && n*elemBytes > len(d.buf) {
		d.err = fmt.Errorf("wire: count %d x %d bytes exceeds remaining %d",
			n, elemBytes, len(d.buf))
		return 0
	}
	return n
}

func (d *decoder) errf(format string, args ...any) error {
	if d.err == nil {
		d.err = fmt.Errorf("wire: "+format, args...)
	}
	return d.err
}

const (
	maxCommands = 4096
	maxEntities = 65536
	maxPoints   = 8 << 20
)
