package wire

import (
	"fmt"

	"repro/internal/vmath"
)

// EncodePoints appends pts at 12 bytes/point to dst and returns the
// extended slice.
func EncodePoints(dst []byte, pts []vmath.Vec3) []byte {
	e := encoder{buf: dst}
	for _, p := range pts {
		e.vec3(p)
	}
	return e.buf
}

// DecodePoints parses n points from buf. n is validated against the
// buffer before allocating, so a hostile count cannot force a huge
// allocation backed by a tiny message.
func DecodePoints(buf []byte, n int) ([]vmath.Vec3, error) {
	if n < 0 || n > len(buf)/PointBytes {
		return nil, fmt.Errorf("wire: point count %d exceeds %d-byte buffer", n, len(buf))
	}
	d := decoder{buf: buf}
	out := make([]vmath.Vec3, n)
	for i := range out {
		out[i] = d.vec3()
	}
	return out, d.err
}

// EncodeClientUpdate marshals a ClientUpdate.
func EncodeClientUpdate(u ClientUpdate) []byte {
	var e encoder
	e.mat4(u.Head)
	e.vec3(u.Hand)
	e.u8(u.Gesture)
	e.u32(uint32(len(u.Commands)))
	for _, c := range u.Commands {
		e.u8(uint8(c.Kind))
		e.i32(c.Rake)
		e.u8(c.Grab)
		e.u8(c.Tool)
		e.u32(c.NumSeeds)
		e.u8(c.Flag)
		e.f32(c.Value)
		e.vec3(c.P0)
		e.vec3(c.P1)
		e.vec3(c.Pos)
	}
	return e.buf
}

// DecodeClientUpdate unmarshals a ClientUpdate.
func DecodeClientUpdate(buf []byte) (ClientUpdate, error) {
	d := decoder{buf: buf}
	var u ClientUpdate
	u.Head = d.mat4()
	u.Hand = d.vec3()
	u.Gesture = d.u8()
	const commandBytes = 52
	n := d.countSized(maxCommands, commandBytes)
	if d.err != nil {
		return ClientUpdate{}, d.err
	}
	u.Commands = make([]Command, n)
	for i := range u.Commands {
		c := &u.Commands[i]
		c.Kind = CmdKind(d.u8())
		c.Rake = d.i32()
		c.Grab = d.u8()
		c.Tool = d.u8()
		c.NumSeeds = d.u32()
		c.Flag = d.u8()
		c.Value = d.f32()
		c.P0 = d.vec3()
		c.P1 = d.vec3()
		c.Pos = d.vec3()
	}
	return u, d.err
}

// EncodeFrameReply marshals a FrameReply into a fresh buffer.
func EncodeFrameReply(r FrameReply) []byte {
	return AppendFrameReply(make([]byte, 0, 256+r.TotalPoints()*PointBytes), r)
}

// AppendFrameReply marshals a FrameReply, appending to dst, and
// returns the extended slice. Servers encoding every frame pass a
// recycled dst[:0] so steady-state frames reuse one buffer instead of
// allocating TotalPoints*12 bytes per round.
func AppendFrameReply(dst []byte, r FrameReply) []byte {
	e := encoder{buf: dst}
	e.f32(r.Time.Current)
	e.f32(r.Time.Speed)
	e.bool(r.Time.Playing)
	e.bool(r.Time.Loop)
	e.u32(r.Time.NumSteps)
	e.i64(r.ComputeNanos)
	e.i64(r.LoadNanos)
	e.u64(r.Round)
	e.u8(r.Degraded)

	e.u32(uint32(len(r.Users)))
	for _, u := range r.Users {
		e.i64(u.ID)
		e.mat4(u.Head)
		e.vec3(u.Hand)
		e.u8(u.Gesture)
	}
	e.u32(uint32(len(r.Rakes)))
	for _, rk := range r.Rakes {
		e.i32(rk.ID)
		e.vec3(rk.P0)
		e.vec3(rk.P1)
		e.u32(rk.NumSeeds)
		e.u8(rk.Tool)
		e.i64(rk.Holder)
		e.u8(rk.Grab)
	}
	e.u32(uint32(len(r.Geometry)))
	for _, g := range r.Geometry {
		e.i32(g.Rake)
		e.u8(g.Tool)
		e.u32(uint32(len(g.Lines)))
		for _, line := range g.Lines {
			e.u32(uint32(len(line)))
			e.buf = EncodePoints(e.buf, line)
		}
	}
	// The shared-tool section is optional and trailing: v1 decoders
	// have always stopped after the geometry section, so its presence
	// is simply "bytes remain".
	if r.Tools != nil {
		e.buf = appendToolsReply(e.buf, r.Tools)
	}
	return e.buf
}

// DecodeFrameReply unmarshals a FrameReply.
func DecodeFrameReply(buf []byte) (FrameReply, error) {
	d := decoder{buf: buf}
	var r FrameReply
	r.Time.Current = d.f32()
	r.Time.Speed = d.f32()
	r.Time.Playing = d.bool()
	r.Time.Loop = d.bool()
	r.Time.NumSteps = d.u32()
	r.ComputeNanos = d.i64()
	r.LoadNanos = d.i64()
	r.Round = d.u64()
	r.Degraded = d.u8()

	const userBytes = 85
	nUsers := d.countSized(maxEntities, userBytes)
	if d.err != nil {
		return FrameReply{}, d.err
	}
	r.Users = make([]UserState, nUsers)
	for i := range r.Users {
		u := &r.Users[i]
		u.ID = d.i64()
		u.Head = d.mat4()
		u.Hand = d.vec3()
		u.Gesture = d.u8()
	}
	const rakeBytes = 42
	nRakes := d.countSized(maxEntities, rakeBytes)
	if d.err != nil {
		return FrameReply{}, d.err
	}
	r.Rakes = make([]RakeState, nRakes)
	for i := range r.Rakes {
		rk := &r.Rakes[i]
		rk.ID = d.i32()
		rk.P0 = d.vec3()
		rk.P1 = d.vec3()
		rk.NumSeeds = d.u32()
		rk.Tool = d.u8()
		rk.Holder = d.i64()
		rk.Grab = d.u8()
	}
	nGeom := d.countSized(maxEntities, 9) // id + tool + line count minimum
	if d.err != nil {
		return FrameReply{}, d.err
	}
	r.Geometry = make([]Geometry, nGeom)
	var totalPoints int
	for i := range r.Geometry {
		g := &r.Geometry[i]
		g.Rake = d.i32()
		g.Tool = d.u8()
		nLines := d.countSized(maxEntities, 4)
		if d.err != nil {
			return FrameReply{}, d.err
		}
		g.Lines = make([][]vmath.Vec3, nLines)
		for l := range g.Lines {
			nPts := d.countSized(maxPoints, PointBytes)
			if d.err != nil {
				return FrameReply{}, d.err
			}
			totalPoints += nPts
			if totalPoints > maxPoints {
				return FrameReply{}, d.errf("too many total points")
			}
			line := make([]vmath.Vec3, nPts)
			for p := range line {
				line[p] = d.vec3()
			}
			g.Lines[l] = line
		}
	}
	if d.err == nil && len(d.buf) > 0 {
		t, err := decodeToolsReply(d.buf, maxPoints-totalPoints)
		if err != nil {
			return FrameReply{}, err
		}
		d.buf = nil
		r.Tools = &t
	}
	return r, d.err
}

// EncodeDatasetInfo marshals a DatasetInfo.
func EncodeDatasetInfo(i DatasetInfo) []byte {
	var e encoder
	e.u32(i.NI)
	e.u32(i.NJ)
	e.u32(i.NK)
	e.u32(i.NumSteps)
	e.f32(i.DT)
	e.vec3(i.BoundsMin)
	e.vec3(i.BoundsMax)
	return e.buf
}

// DecodeDatasetInfo unmarshals a DatasetInfo.
func DecodeDatasetInfo(buf []byte) (DatasetInfo, error) {
	d := decoder{buf: buf}
	var i DatasetInfo
	i.NI = d.u32()
	i.NJ = d.u32()
	i.NK = d.u32()
	i.NumSteps = d.u32()
	i.DT = d.f32()
	i.BoundsMin = d.vec3()
	i.BoundsMax = d.vec3()
	return i, d.err
}
