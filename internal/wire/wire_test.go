package wire

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/vmath"
)

func TestPointEncodingIs12Bytes(t *testing.T) {
	// Table 1 rests on exactly 12 bytes/point.
	pts := []vmath.Vec3{{X: 1, Y: 2, Z: 3}, {X: 4, Y: 5, Z: 6}}
	buf := EncodePoints(nil, pts)
	if len(buf) != 2*PointBytes {
		t.Fatalf("encoded %d points in %d bytes, want %d", len(pts), len(buf), 2*PointBytes)
	}
	back, err := DecodePoints(buf, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := range pts {
		if back[i] != pts[i] {
			t.Errorf("point %d = %v, want %v", i, back[i], pts[i])
		}
	}
}

func TestDecodePointsRejectsHostileCount(t *testing.T) {
	// A length prefix must be validated against the actual buffer: a
	// tiny message claiming 2^30 points must not allocate 12 GB.
	buf := EncodePoints(nil, []vmath.Vec3{{X: 1}})
	if _, err := DecodePoints(buf, 1<<30); err == nil {
		t.Error("hostile point count accepted")
	}
	if _, err := DecodePoints(buf, -1); err == nil {
		t.Error("negative point count accepted")
	}
	if _, err := DecodePoints(buf, 2); err == nil {
		t.Error("count beyond buffer accepted")
	}
}

func TestTable1Arithmetic(t *testing.T) {
	// The paper's Table 1 rows: particles -> bytes at 12 B/point.
	cases := []struct {
		particles int
		bytes     int
	}{
		{10000, 120000},
		{50000, 600000},
		{100000, 1200000},
	}
	for _, c := range cases {
		if got := c.particles * PointBytes; got != c.bytes {
			t.Errorf("%d particles -> %d bytes, want %d", c.particles, got, c.bytes)
		}
	}
}

func randomUpdate(rng *rand.Rand) ClientUpdate {
	u := ClientUpdate{
		Head:    vmath.Translate(rng.Float32(), rng.Float32(), rng.Float32()),
		Hand:    vmath.V3(rng.Float32(), rng.Float32(), rng.Float32()),
		Gesture: uint8(rng.Intn(4)),
	}
	n := rng.Intn(5)
	for i := 0; i < n; i++ {
		u.Commands = append(u.Commands, Command{
			Kind:     CmdKind(1 + rng.Intn(10)),
			Rake:     int32(rng.Intn(100)),
			Grab:     uint8(rng.Intn(4)),
			Tool:     uint8(rng.Intn(3)),
			NumSeeds: uint32(rng.Intn(50)),
			Flag:     uint8(rng.Intn(2)),
			Value:    rng.Float32() * 10,
			P0:       vmath.V3(rng.Float32(), rng.Float32(), rng.Float32()),
			P1:       vmath.V3(rng.Float32(), rng.Float32(), rng.Float32()),
			Pos:      vmath.V3(rng.Float32(), rng.Float32(), rng.Float32()),
		})
	}
	return u
}

func updatesEqual(a, b ClientUpdate) bool {
	if a.Head != b.Head || a.Hand != b.Hand || a.Gesture != b.Gesture {
		return false
	}
	if len(a.Commands) != len(b.Commands) {
		return false
	}
	for i := range a.Commands {
		if a.Commands[i] != b.Commands[i] {
			return false
		}
	}
	return true
}

func TestClientUpdateRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 50; i++ {
		u := randomUpdate(rng)
		got, err := DecodeClientUpdate(EncodeClientUpdate(u))
		if err != nil {
			t.Fatal(err)
		}
		if !updatesEqual(u, got) {
			t.Fatalf("iter %d: round trip mismatch\n%+v\n%+v", i, u, got)
		}
	}
}

func randomReply(rng *rand.Rand) FrameReply {
	r := FrameReply{
		Time: TimeStatus{
			Current:  rng.Float32() * 100,
			Speed:    rng.Float32()*4 - 2,
			Playing:  rng.Intn(2) == 1,
			Loop:     rng.Intn(2) == 1,
			NumSteps: uint32(rng.Intn(800)),
		},
		ComputeNanos: rng.Int63(),
		LoadNanos:    rng.Int63(),
		Round:        rng.Uint64(),
		Degraded:     uint8(rng.Intn(256)),
	}
	for i := 0; i < rng.Intn(3); i++ {
		r.Users = append(r.Users, UserState{
			ID:      rng.Int63n(100),
			Head:    vmath.RotateX(rng.Float32()),
			Hand:    vmath.V3(rng.Float32(), rng.Float32(), rng.Float32()),
			Gesture: uint8(rng.Intn(4)),
		})
	}
	for i := 0; i < rng.Intn(3); i++ {
		r.Rakes = append(r.Rakes, RakeState{
			ID:       int32(i + 1),
			P0:       vmath.V3(rng.Float32(), 0, 0),
			P1:       vmath.V3(0, rng.Float32(), 0),
			NumSeeds: uint32(1 + rng.Intn(20)),
			Tool:     uint8(rng.Intn(3)),
			Holder:   rng.Int63n(3),
			Grab:     uint8(rng.Intn(4)),
		})
	}
	for i := 0; i < rng.Intn(3); i++ {
		g := Geometry{Rake: int32(i + 1), Tool: uint8(rng.Intn(3))}
		for l := 0; l < rng.Intn(4); l++ {
			var line []vmath.Vec3
			for p := 0; p < rng.Intn(20); p++ {
				line = append(line, vmath.V3(rng.Float32(), rng.Float32(), rng.Float32()))
			}
			g.Lines = append(g.Lines, line)
		}
		r.Geometry = append(r.Geometry, g)
	}
	return r
}

func repliesEqual(a, b FrameReply) bool {
	if a.Time != b.Time || a.ComputeNanos != b.ComputeNanos || a.LoadNanos != b.LoadNanos ||
		a.Round != b.Round || a.Degraded != b.Degraded {
		return false
	}
	if len(a.Users) != len(b.Users) || len(a.Rakes) != len(b.Rakes) || len(a.Geometry) != len(b.Geometry) {
		return false
	}
	for i := range a.Users {
		if a.Users[i] != b.Users[i] {
			return false
		}
	}
	for i := range a.Rakes {
		if a.Rakes[i] != b.Rakes[i] {
			return false
		}
	}
	for i := range a.Geometry {
		ga, gb := a.Geometry[i], b.Geometry[i]
		if ga.Rake != gb.Rake || ga.Tool != gb.Tool || len(ga.Lines) != len(gb.Lines) {
			return false
		}
		for l := range ga.Lines {
			if len(ga.Lines[l]) != len(gb.Lines[l]) {
				return false
			}
			for p := range ga.Lines[l] {
				if ga.Lines[l][p] != gb.Lines[l][p] {
					return false
				}
			}
		}
	}
	return true
}

func TestFrameReplyRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 50; i++ {
		r := randomReply(rng)
		got, err := DecodeFrameReply(EncodeFrameReply(r))
		if err != nil {
			t.Fatal(err)
		}
		if !repliesEqual(r, got) {
			t.Fatalf("iter %d: round trip mismatch", i)
		}
	}
}

func TestFrameReplySizeDominatedByPoints(t *testing.T) {
	// The paper argues rake/user state overhead is "typically minor
	// compared to the visualization data itself". Check: a 10,000
	// point reply is within 1% of 120,000 bytes + fixed overhead.
	line := make([]vmath.Vec3, 10000)
	r := FrameReply{
		Time:     TimeStatus{NumSteps: 800},
		Rakes:    []RakeState{{ID: 1, NumSeeds: 50}},
		Geometry: []Geometry{{Rake: 1, Lines: [][]vmath.Vec3{line}}},
	}
	buf := EncodeFrameReply(r)
	pointBytes := 10000 * PointBytes
	overhead := len(buf) - pointBytes
	if overhead > pointBytes/100 {
		t.Errorf("overhead %d bytes exceeds 1%% of %d point bytes", overhead, pointBytes)
	}
	if r.TotalPoints() != 10000 {
		t.Errorf("TotalPoints = %d", r.TotalPoints())
	}
}

func TestDatasetInfoRoundTrip(t *testing.T) {
	i := DatasetInfo{
		NI: 64, NJ: 64, NK: 32, NumSteps: 800, DT: 0.05,
		BoundsMin: vmath.V3(-12, -12, 0), BoundsMax: vmath.V3(12, 12, 16),
	}
	got, err := DecodeDatasetInfo(EncodeDatasetInfo(i))
	if err != nil {
		t.Fatal(err)
	}
	if got != i {
		t.Errorf("round trip %+v != %+v", got, i)
	}
}

func TestDecodersRejectTruncation(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	u := randomUpdate(rng)
	u.Commands = append(u.Commands, Command{Kind: CmdGrab})
	buf := EncodeClientUpdate(u)
	for _, cut := range []int{1, len(buf) / 2, len(buf) - 1} {
		if _, err := DecodeClientUpdate(buf[:cut]); err == nil {
			t.Errorf("truncated at %d accepted", cut)
		}
	}
	r := randomReply(rng)
	r.Geometry = append(r.Geometry, Geometry{Lines: [][]vmath.Vec3{make([]vmath.Vec3, 5)}})
	rbuf := EncodeFrameReply(r)
	if _, err := DecodeFrameReply(rbuf[:len(rbuf)-3]); err == nil {
		t.Error("truncated reply accepted")
	}
}

func TestDecodeRejectsAbsurdCounts(t *testing.T) {
	// Header with a users count of 2^32-1 must be rejected before any
	// allocation attempt.
	var e encoder
	e.f32(0)
	e.f32(0)
	e.bool(false)
	e.bool(false)
	e.u32(1)
	e.i64(0)
	e.i64(0)
	e.u32(0xFFFFFFFF)
	if _, err := DecodeFrameReply(e.buf); err == nil {
		t.Error("absurd user count accepted")
	}
}

func TestPointsRoundTripProperty(t *testing.T) {
	f := func(xs []float32) bool {
		pts := make([]vmath.Vec3, 0, len(xs)/3)
		for i := 0; i+2 < len(xs); i += 3 {
			pts = append(pts, vmath.V3(xs[i], xs[i+1], xs[i+2]))
		}
		buf := EncodePoints(nil, pts)
		if len(buf) != len(pts)*PointBytes {
			return false
		}
		back, err := DecodePoints(buf, len(pts))
		if err != nil {
			return false
		}
		for i := range pts {
			// NaN != NaN; compare bit patterns via re-encode.
			a := EncodePoints(nil, pts[i:i+1])
			b := EncodePoints(nil, back[i:i+1])
			for j := range a {
				if a[j] != b[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func BenchmarkEncodeFrameReply10k(b *testing.B) {
	line := make([]vmath.Vec3, 200)
	geo := Geometry{Rake: 1}
	for i := 0; i < 50; i++ { // 50 x 200 = 10,000 points
		geo.Lines = append(geo.Lines, line)
	}
	r := FrameReply{Geometry: []Geometry{geo}}
	b.SetBytes(int64(r.TotalPoints() * PointBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf := EncodeFrameReply(r)
		if len(buf) < 120000 {
			b.Fatal("short encode")
		}
	}
}

func TestDecodeRejectsUndersizedPayloadClaims(t *testing.T) {
	// A tiny message claiming a huge point count must fail before any
	// large allocation: the count is bounded by the remaining bytes.
	var e encoder
	e.f32(0) // time fields
	e.f32(0)
	e.bool(false)
	e.bool(false)
	e.u32(1)
	e.i64(0)
	e.i64(0)
	e.u32(0)       // users
	e.u32(0)       // rakes
	e.u32(1)       // one geometry
	e.i32(1)       // rake id
	e.u8(0)        // tool
	e.u32(1)       // one line
	e.u32(7000000) // claims 7M points with no bytes behind it
	if _, err := DecodeFrameReply(e.buf); err == nil {
		t.Error("undersized point claim accepted")
	}
}
