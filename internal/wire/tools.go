package wire

// Shared field-diagnostic tools on the wire. Unlike rakes — of which
// there may be any number — there is exactly one isosurface, one
// cutting plane, and one vortex-core extractor per environment, so the
// tool section is a fixed triple of states plus up to three geometry
// records. The section is optional and trailing in both codecs:
// codec-v1 decoders have always ignored nothing-after-geometry, and
// codec v2 appends the section between the geometry directory and its
// trailing-bytes check, so a server that never activates a tool emits
// frames byte-identical to builds that predate tools.

import (
	"fmt"

	"repro/internal/vmath"
)

// Tool kind bytes, shared by v1 and v2 tool records. They mirror
// env.ToolID.
const (
	ToolKindIso    = 1
	ToolKindPlane  = 2
	ToolKindVortex = 3
)

// toolSectionV1 is the version byte leading the codec-v1 tool section,
// so future section layouts can be detected instead of misparsed.
const toolSectionV1 = 1

// maxToolGeoms bounds the geometry records in a tool section: one per
// tool kind.
const maxToolGeoms = 3

// ToolState is one shared tool's frame-visible state. Axis is only
// meaningful for the cutting plane; Value is the iso level, plane
// fraction, or Q threshold depending on the tool.
type ToolState struct {
	Enabled bool
	Axis    uint8
	Value   float32
	Holder  int64
}

// ToolGeom is the computed geometry of one shared tool: a flat point
// array in physical coordinates. Isosurface and vortex-core points are
// a triangle soup (length divisible by 3); cutting-plane points are
// hedgehog segment pairs (length divisible by 2).
type ToolGeom struct {
	Tool   uint8
	Points []vmath.Vec3
}

// NumPoints returns the geometry's point count.
func (g ToolGeom) NumPoints() int { return len(g.Points) }

// ToolsReply is the frame's tool section: all three tool states plus
// the geometry of every enabled tool, in iso/plane/vortex order.
type ToolsReply struct {
	Iso    ToolState
	Plane  ToolState
	Vortex ToolState
	Geoms  []ToolGeom
}

// TotalPoints returns the point count across all tool geometry.
func (t *ToolsReply) TotalPoints() int {
	var n int
	for _, g := range t.Geoms {
		n += len(g.Points)
	}
	return n
}

// toolState and the decoder mirror are the fixed 14-byte state record
// shared by the v1 and v2 tool sections.
func (e *encoder) toolState(s ToolState) {
	e.bool(s.Enabled)
	e.u8(s.Axis)
	e.f32(s.Value)
	e.i64(s.Holder)
}

func (d *decoder) toolState() ToolState {
	var s ToolState
	s.Enabled = d.bool()
	s.Axis = d.u8()
	s.Value = d.f32()
	s.Holder = d.i64()
	return s
}

// appendToolsReply appends the codec-v1 tool section: a section
// version byte, the three tool states, then each geometry as a tool
// byte, point count, and 12-byte points.
func appendToolsReply(dst []byte, t *ToolsReply) []byte {
	e := encoder{buf: dst}
	e.u8(toolSectionV1)
	e.toolState(t.Iso)
	e.toolState(t.Plane)
	e.toolState(t.Vortex)
	e.u32(uint32(len(t.Geoms)))
	for _, g := range t.Geoms {
		e.u8(g.Tool)
		e.u32(uint32(len(g.Points)))
		e.buf = EncodePoints(e.buf, g.Points)
	}
	return e.buf
}

// decodeToolsReply parses a codec-v1 tool section, counting decoded
// points against the caller's remaining point budget. The section is
// the tail of the frame, so trailing bytes are an error.
func decodeToolsReply(buf []byte, budget int) (ToolsReply, error) {
	d := decoder{buf: buf}
	if v := d.u8(); d.err == nil && v != toolSectionV1 {
		return ToolsReply{}, fmt.Errorf("wire: tool section version %d, want %d", v, toolSectionV1)
	}
	var t ToolsReply
	t.Iso = d.toolState()
	t.Plane = d.toolState()
	t.Vortex = d.toolState()
	nGeoms := d.countSized(maxToolGeoms, 5) // tool + point count minimum
	if d.err != nil {
		return ToolsReply{}, d.err
	}
	t.Geoms = make([]ToolGeom, nGeoms)
	var total int
	for i := range t.Geoms {
		g := &t.Geoms[i]
		g.Tool = d.u8()
		nPts := d.countSized(maxPoints, PointBytes)
		if d.err != nil {
			return ToolsReply{}, d.err
		}
		total += nPts
		if total > budget {
			return ToolsReply{}, d.errf("too many tool points")
		}
		pts := make([]vmath.Vec3, nPts)
		for p := range pts {
			pts[p] = d.vec3()
		}
		g.Points = pts
	}
	if d.err == nil && len(d.buf) != 0 {
		return ToolsReply{}, fmt.Errorf("wire: %d trailing bytes in tool section", len(d.buf))
	}
	return t, d.err
}
