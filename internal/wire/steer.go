package wire

// ProcSteer is the dlib procedure returning the current SteerStatus:
// the live flow parameters, who holds the steering lock, and the
// steering change counter. Steering state rides its own procedure
// rather than FrameReply so the frame byte streams — and every golden
// corpus entry built from them — are unchanged by the live subsystem.
const ProcSteer = "vw.steer"

// SteerStatus is the remote host's view of live steering.
type SteerStatus struct {
	InflowU  float32
	Reynolds float32
	Taper    float32
	Holder   int64  // session holding the steering lock, 0 = free
	Version  uint64 // increments on every accepted parameter change
}

// EncodeSteerStatus marshals a SteerStatus.
func EncodeSteerStatus(s SteerStatus) []byte {
	var e encoder
	e.f32(s.InflowU)
	e.f32(s.Reynolds)
	e.f32(s.Taper)
	e.i64(s.Holder)
	e.u64(s.Version)
	return e.buf
}

// DecodeSteerStatus unmarshals a SteerStatus.
func DecodeSteerStatus(buf []byte) (SteerStatus, error) {
	d := decoder{buf: buf}
	var s SteerStatus
	s.InflowU = d.f32()
	s.Reynolds = d.f32()
	s.Taper = d.f32()
	s.Holder = d.i64()
	s.Version = d.u64()
	return s, d.err
}
