package wire

import (
	"math"
	"testing"
)

// TestSteerStatusRoundTrip pins the ProcSteer payload: every field
// survives the codec, including the non-finite floats a hostile or
// buggy peer could put on the wire — the decoder's job is framing,
// the bounds live in validSteerParams at the server.
func TestSteerStatusRoundTrip(t *testing.T) {
	cases := []SteerStatus{
		{},
		{InflowU: 2.5, Reynolds: 350, Taper: 0.9, Holder: 42, Version: 7},
		{InflowU: -1, Reynolds: float32(math.Inf(1)), Taper: 1e30, Holder: -9, Version: ^uint64(0)},
	}
	for i, want := range cases {
		got, err := DecodeSteerStatus(EncodeSteerStatus(want))
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		// NaN-free cases compare directly; the codec is bit-transparent.
		if got != want {
			t.Fatalf("case %d: round-trip %+v != %+v", i, got, want)
		}
	}

	nan := float32(math.NaN())
	got, err := DecodeSteerStatus(EncodeSteerStatus(SteerStatus{Reynolds: nan, Holder: 1}))
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(float64(got.Reynolds)) || got.Holder != 1 {
		t.Fatalf("NaN Reynolds did not survive the codec: %+v", got)
	}
}

// TestSteerStatusDecodeTruncated: every truncation of a valid payload
// errors instead of fabricating fields.
func TestSteerStatusDecodeTruncated(t *testing.T) {
	buf := EncodeSteerStatus(SteerStatus{InflowU: 2, Reynolds: 300, Taper: 0.8, Holder: 3, Version: 9})
	for n := 0; n < len(buf); n++ {
		if _, err := DecodeSteerStatus(buf[:n]); err == nil {
			t.Fatalf("truncation to %d bytes decoded without error", n)
		}
	}
}
