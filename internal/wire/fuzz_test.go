package wire

import (
	"testing"

	"repro/internal/vmath"
)

// Fuzz targets: the decoders parse bytes straight off the network, so
// they must never panic or over-allocate on malformed input. Run with
// `go test -fuzz FuzzDecodeClientUpdate ./internal/wire` to explore;
// the seed corpus below runs as part of the normal test suite.

func FuzzDecodeClientUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeClientUpdate(ClientUpdate{
		Head: vmath.Identity(),
		Hand: vmath.V3(1, 2, 3),
		Commands: []Command{
			{Kind: CmdGrab, Rake: 1, Grab: 1},
			{Kind: CmdAddRake, NumSeeds: 5, P0: vmath.V3(1, 0, 0)},
		},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeClientUpdate(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode without panicking and the
		// command list must respect the decoder's own bound.
		if len(u.Commands) > 4096 {
			t.Fatalf("decoder allowed %d commands", len(u.Commands))
		}
		_ = EncodeClientUpdate(u)
	})
}

func FuzzDecodeFrameReply(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrameReply(FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 10},
		Rakes: []RakeState{{ID: 1, NumSeeds: 3}},
		Geometry: []Geometry{{
			Rake:  1,
			Lines: [][]vmath.Vec3{{{X: 1}, {Y: 2}}},
		}},
	}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeFrameReply(data)
		if err != nil {
			return
		}
		if r.TotalPoints() > maxPoints {
			t.Fatalf("decoder allowed %d points", r.TotalPoints())
		}
		_ = EncodeFrameReply(r)
	})
}

// FuzzDecodeFrameV2 feeds hostile bytes to the stateful codec-v2
// decoder. Seeds cover the nasty corners: truncated varints, reference
// records for never-sent rakes, extreme quantized coordinates, and
// hostile counts. Each input decodes twice on one decoder so the
// shadow-holding (second-frame) path is explored too.
func FuzzDecodeFrameV2(f *testing.F) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	frame := FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 10},
		Users: []UserState{{ID: 3, Head: vmath.Identity()}},
		Rakes: []RakeState{{ID: 1, NumSeeds: 3}},
		Geometry: []Geometry{{
			Rake:  1,
			Lines: [][]vmath.Vec3{{vmath.V3(1, 2, 3), vmath.V3(9, 9, 9)}},
		}},
	}
	f.Add([]byte{})
	f.Add([]byte{CodecV2})
	enc := NewFrameEncoder(q)
	f.Add(enc.AppendFrame(nil, frame, []uint64{7}, nil)) // keyframe
	f.Add(enc.AppendFrame(nil, frame, []uint64{7}, nil)) // all-ref frame: on a fresh decoder, a never-sent reference
	// Truncated varint: a keyframe cut mid-count.
	key := NewFrameEncoder(q).AppendFrame(nil, frame, []uint64{7}, nil)
	f.Add(key[:len(key)-7])
	// Extreme quantized coordinates (0xFFFF everywhere past the header).
	hostile := append([]byte{}, key...)
	for i := len(key) - 12; i < len(key); i++ {
		hostile[i] = 0xff
	}
	f.Add(hostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewFrameDecoder(q)
		for pass := 0; pass < 2; pass++ {
			r, err := d.Decode(data)
			if err != nil {
				return
			}
			if r.TotalPoints() > maxPoints {
				t.Fatalf("decoder allowed %d points", r.TotalPoints())
			}
			// Every decoded point must land inside the quantization box.
			for _, g := range r.Geometry {
				for _, line := range g.Lines {
					for _, p := range line {
						if p.X < q.Min.X || p.X > q.Max.X ||
							p.Y < q.Min.Y || p.Y > q.Max.Y ||
							p.Z < q.Min.Z || p.Z > q.Max.Z {
							t.Fatalf("decoded point %v escapes the box", p)
						}
					}
				}
			}
		}
	})
}

func FuzzDecodeDatasetInfo(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDatasetInfo(DatasetInfo{NI: 64, NJ: 64, NK: 32, NumSteps: 800, DT: 0.05}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if i, err := DecodeDatasetInfo(data); err == nil {
			_ = EncodeDatasetInfo(i)
		}
	})
}
