package wire

import (
	"testing"

	"repro/internal/vmath"
)

// Fuzz targets: the decoders parse bytes straight off the network, so
// they must never panic or over-allocate on malformed input. Run with
// `go test -fuzz FuzzDecodeClientUpdate ./internal/wire` to explore;
// the seed corpus below runs as part of the normal test suite.

func FuzzDecodeClientUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeClientUpdate(ClientUpdate{
		Head: vmath.Identity(),
		Hand: vmath.V3(1, 2, 3),
		Commands: []Command{
			{Kind: CmdGrab, Rake: 1, Grab: 1},
			{Kind: CmdAddRake, NumSeeds: 5, P0: vmath.V3(1, 0, 0)},
		},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeClientUpdate(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode without panicking and the
		// command list must respect the decoder's own bound.
		if len(u.Commands) > 4096 {
			t.Fatalf("decoder allowed %d commands", len(u.Commands))
		}
		_ = EncodeClientUpdate(u)
	})
}

func FuzzDecodeFrameReply(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrameReply(FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 10},
		Rakes: []RakeState{{ID: 1, NumSeeds: 3}},
		Geometry: []Geometry{{
			Rake:  1,
			Lines: [][]vmath.Vec3{{{X: 1}, {Y: 2}}},
		}},
	}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeFrameReply(data)
		if err != nil {
			return
		}
		if r.TotalPoints() > maxPoints {
			t.Fatalf("decoder allowed %d points", r.TotalPoints())
		}
		_ = EncodeFrameReply(r)
	})
}

func FuzzDecodeDatasetInfo(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDatasetInfo(DatasetInfo{NI: 64, NJ: 64, NK: 32, NumSteps: 800, DT: 0.05}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if i, err := DecodeDatasetInfo(data); err == nil {
			_ = EncodeDatasetInfo(i)
		}
	})
}
