package wire

import (
	"testing"

	"repro/internal/vmath"
)

// Fuzz targets: the decoders parse bytes straight off the network, so
// they must never panic or over-allocate on malformed input. Run with
// `go test -fuzz FuzzDecodeClientUpdate ./internal/wire` to explore;
// the seed corpus below runs as part of the normal test suite.

func FuzzDecodeClientUpdate(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeClientUpdate(ClientUpdate{
		Head: vmath.Identity(),
		Hand: vmath.V3(1, 2, 3),
		Commands: []Command{
			{Kind: CmdGrab, Rake: 1, Grab: 1},
			{Kind: CmdAddRake, NumSeeds: 5, P0: vmath.V3(1, 0, 0)},
		},
	}))
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := DecodeClientUpdate(data)
		if err != nil {
			return
		}
		// A successful decode must re-encode without panicking and the
		// command list must respect the decoder's own bound.
		if len(u.Commands) > 4096 {
			t.Fatalf("decoder allowed %d commands", len(u.Commands))
		}
		_ = EncodeClientUpdate(u)
	})
}

func FuzzDecodeFrameReply(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeFrameReply(FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 10},
		Rakes: []RakeState{{ID: 1, NumSeeds: 3}},
		Geometry: []Geometry{{
			Rake:  1,
			Lines: [][]vmath.Vec3{{{X: 1}, {Y: 2}}},
		}},
	}))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeFrameReply(data)
		if err != nil {
			return
		}
		if r.TotalPoints() > maxPoints {
			t.Fatalf("decoder allowed %d points", r.TotalPoints())
		}
		_ = EncodeFrameReply(r)
	})
}

// FuzzDecodeFrameV2 feeds hostile bytes to the stateful codec-v2
// decoder. Seeds cover the nasty corners: truncated varints, reference
// records for never-sent rakes, extreme quantized coordinates, and
// hostile counts. Each input decodes twice on one decoder so the
// shadow-holding (second-frame) path is explored too.
func FuzzDecodeFrameV2(f *testing.F) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	frame := FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 10},
		Users: []UserState{{ID: 3, Head: vmath.Identity()}},
		Rakes: []RakeState{{ID: 1, NumSeeds: 3}},
		Geometry: []Geometry{{
			Rake:  1,
			Lines: [][]vmath.Vec3{{vmath.V3(1, 2, 3), vmath.V3(9, 9, 9)}},
		}},
	}
	f.Add([]byte{})
	f.Add([]byte{CodecV2})
	enc := NewFrameEncoder(q)
	f.Add(enc.AppendFrame(nil, frame, []uint64{7}, nil, nil, nil)) // keyframe
	f.Add(enc.AppendFrame(nil, frame, []uint64{7}, nil, nil, nil)) // all-ref frame: on a fresh decoder, a never-sent reference
	// Truncated varint: a keyframe cut mid-count.
	key := NewFrameEncoder(q).AppendFrame(nil, frame, []uint64{7}, nil, nil, nil)
	f.Add(key[:len(key)-7])
	// Extreme quantized coordinates (0xFFFF everywhere past the header).
	hostile := append([]byte{}, key...)
	for i := len(key) - 12; i < len(key); i++ {
		hostile[i] = 0xff
	}
	f.Add(hostile)
	// Tool section seeds: a keyframe carrying all three tool states
	// plus inline iso/plane geometry, then the same frame again so the
	// tool shadow emits references (never-sent refs on a fresh
	// decoder), and a truncated/hostile variant of the tool bytes.
	toolFrame := frame
	toolFrame.Tools = &ToolsReply{
		Iso:   ToolState{Enabled: true, Value: 0.8, Holder: 3},
		Plane: ToolState{Enabled: true, Axis: 1, Value: 0.5},
		Geoms: []ToolGeom{
			{Tool: 1, Points: []vmath.Vec3{vmath.V3(1, 1, 1), vmath.V3(2, 2, 2), vmath.V3(3, 3, 3)}},
			{Tool: 2, Points: []vmath.Vec3{vmath.V3(4, 4, 4), vmath.V3(5, 5, 5)}},
		},
	}
	tenc := NewFrameEncoder(q)
	f.Add(tenc.AppendFrame(nil, toolFrame, []uint64{7}, nil, []uint64{11, 12}, nil))
	f.Add(tenc.AppendFrame(nil, toolFrame, []uint64{7}, nil, []uint64{11, 12}, nil))
	tkey := NewFrameEncoder(q).AppendFrame(nil, toolFrame, []uint64{7}, nil, []uint64{11, 12}, nil)
	f.Add(tkey[:len(tkey)-5]) // tool segment cut mid-record
	// Hostile tool bytes: 0xFF over the trailing segment — huge vertex
	// counts, unknown tool kinds, out-of-range quantized points.
	thostile := append([]byte{}, tkey...)
	for i := len(tkey) - 16; i < len(tkey); i++ {
		thostile[i] = 0xff
	}
	f.Add(thostile)
	f.Fuzz(func(t *testing.T, data []byte) {
		d := NewFrameDecoder(q)
		for pass := 0; pass < 2; pass++ {
			r, err := d.Decode(data)
			if err != nil {
				return
			}
			if r.TotalPoints() > maxPoints {
				t.Fatalf("decoder allowed %d points", r.TotalPoints())
			}
			// Every decoded point must land inside the quantization box.
			for _, g := range r.Geometry {
				for _, line := range g.Lines {
					for _, p := range line {
						if p.X < q.Min.X || p.X > q.Max.X ||
							p.Y < q.Min.Y || p.Y > q.Max.Y ||
							p.Z < q.Min.Z || p.Z > q.Max.Z {
							t.Fatalf("decoded point %v escapes the box", p)
						}
					}
				}
			}
			// Tool geometry obeys the same point budget and box.
			if r.Tools != nil {
				if r.TotalPoints()+r.Tools.TotalPoints() > maxPoints {
					t.Fatalf("decoder allowed %d points with tools", r.TotalPoints()+r.Tools.TotalPoints())
				}
				for _, g := range r.Tools.Geoms {
					for _, p := range g.Points {
						if p.X < q.Min.X || p.X > q.Max.X ||
							p.Y < q.Min.Y || p.Y > q.Max.Y ||
							p.Z < q.Min.Z || p.Z > q.Max.Z {
							t.Fatalf("decoded tool point %v escapes the box", p)
						}
					}
				}
			}
		}
	})
}

func FuzzDecodeDatasetInfo(f *testing.F) {
	f.Add([]byte{})
	f.Add(EncodeDatasetInfo(DatasetInfo{NI: 64, NJ: 64, NK: 32, NumSteps: 800, DT: 0.05}))
	f.Fuzz(func(t *testing.T, data []byte) {
		if i, err := DecodeDatasetInfo(data); err == nil {
			_ = EncodeDatasetInfo(i)
		}
	})
}
