package wire

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/vmath"
)

func sampleToolsReply() *ToolsReply {
	return &ToolsReply{
		Iso:    ToolState{Enabled: true, Value: 0.8, Holder: 3},
		Plane:  ToolState{Enabled: true, Axis: 2, Value: 0.25, Holder: -1},
		Vortex: ToolState{Enabled: false, Value: 0.01},
		Geoms: []ToolGeom{
			{Tool: 1, Points: []vmath.Vec3{
				vmath.V3(1, 2, 3), vmath.V3(4, 5, 6), vmath.V3(7, 8, 9),
			}},
			{Tool: 2, Points: []vmath.Vec3{vmath.V3(0.5, 0.5, 0.5), vmath.V3(2, 2, 2)}},
		},
	}
}

// TestToolSectionV1RoundTrip: the optional trailing tool section
// round-trips through the v1 frame codec — states, holders (including
// negative ids), and per-tool geometry — while a tool-less frame stays
// byte-identical to the pre-tool encoding.
func TestToolSectionV1RoundTrip(t *testing.T) {
	base := FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 8},
		Users: []UserState{{ID: 3, Head: vmath.Identity()}},
	}
	bare := EncodeFrameReply(base)

	withTools := base
	withTools.Tools = sampleToolsReply()
	enc := EncodeFrameReply(withTools)
	if !bytes.Equal(enc[:len(bare)], bare) {
		t.Fatal("tool section is not a pure suffix of the legacy frame")
	}
	dec, err := DecodeFrameReply(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.Tools == nil {
		t.Fatal("tool section lost in round trip")
	}
	got, want := dec.Tools, withTools.Tools
	if got.Iso != want.Iso || got.Plane != want.Plane || got.Vortex != want.Vortex {
		t.Fatalf("states: %+v, want %+v", got, want)
	}
	if len(got.Geoms) != 2 || got.Geoms[0].Tool != 1 || got.Geoms[1].Tool != 2 {
		t.Fatalf("geoms: %+v", got.Geoms)
	}
	for i := range want.Geoms {
		if len(got.Geoms[i].Points) != len(want.Geoms[i].Points) {
			t.Fatalf("geom %d: %d points, want %d", i, len(got.Geoms[i].Points), len(want.Geoms[i].Points))
		}
		for p := range want.Geoms[i].Points {
			if got.Geoms[i].Points[p] != want.Geoms[i].Points[p] {
				t.Fatalf("geom %d point %d: %v, want %v", i, p, got.Geoms[i].Points[p], want.Geoms[i].Points[p])
			}
		}
	}
	if got.TotalPoints() != 5 {
		t.Fatalf("TotalPoints = %d", got.TotalPoints())
	}
	// A frame without tools decodes with a nil section.
	decBare, err := DecodeFrameReply(bare)
	if err != nil {
		t.Fatal(err)
	}
	if decBare.Tools != nil {
		t.Fatal("legacy frame grew a tool section")
	}
}

// TestToolSectionV1Hostile: truncations, bad section versions, absurd
// counts, and trailing garbage must all error — never panic, never
// allocate unbounded memory.
func TestToolSectionV1Hostile(t *testing.T) {
	frame := FrameReply{Time: TimeStatus{NumSteps: 4}}
	frame.Tools = sampleToolsReply()
	enc := EncodeFrameReply(frame)
	bare := EncodeFrameReply(FrameReply{Time: TimeStatus{NumSteps: 4}})

	// Every truncation of the tool section fails cleanly.
	for cut := len(bare) + 1; cut < len(enc); cut++ {
		if _, err := DecodeFrameReply(enc[:cut]); err == nil {
			t.Fatalf("truncation at %d accepted", cut)
		}
	}
	// Wrong section version byte.
	bad := append([]byte{}, enc...)
	bad[len(bare)] = 99
	if _, err := DecodeFrameReply(bad); err == nil || !strings.Contains(err.Error(), "tool section version") {
		t.Fatalf("bad section version: %v", err)
	}
	// Hostile geometry count: 0xFFFFFFFF geoms.
	hostile := append([]byte{}, enc[:len(bare)+1+3*14]...)
	hostile = append(hostile, 0xff, 0xff, 0xff, 0xff)
	if _, err := DecodeFrameReply(hostile); err == nil {
		t.Fatal("absurd geom count accepted")
	}
	// Hostile point count inside one geom record.
	hostile = append([]byte{}, enc[:len(bare)+1+3*14]...)
	hostile = append(hostile, 1, 0, 0, 0, 1, 0xff, 0xff, 0xff, 0xff)
	if _, err := DecodeFrameReply(hostile); err == nil {
		t.Fatal("absurd point count accepted")
	}
	// Trailing garbage after a complete section.
	if _, err := DecodeFrameReply(append(append([]byte{}, enc...), 0)); err == nil {
		t.Fatal("trailing bytes accepted")
	}
}

// TestToolGeomV2ShadowDelta: the v2 tool shadow works like the rake
// shadow — first send inline, repeat sends a reference, a version bump
// re-inlines, and a reference to a never-sent tool errors on a fresh
// decoder.
func TestToolGeomV2ShadowDelta(t *testing.T) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	frame := FrameReply{
		Time:  TimeStatus{Current: 1, NumSteps: 8},
		Users: []UserState{{ID: 1, Head: vmath.Identity()}},
		Tools: sampleToolsReply(),
	}
	enc := NewFrameEncoder(q)
	dec := NewFrameDecoder(q)

	first := enc.AppendFrame(nil, frame, nil, nil, []uint64{5, 6}, nil)
	if enc.LastInline != 2 || enc.LastRef != 0 {
		t.Fatalf("first frame: inline=%d ref=%d", enc.LastInline, enc.LastRef)
	}
	r1, err := dec.Decode(first)
	if err != nil {
		t.Fatal(err)
	}
	if r1.Tools == nil || r1.Tools.TotalPoints() != 5 {
		t.Fatalf("first decode: %+v", r1.Tools)
	}

	// Same sequence numbers: both tool geoms go by reference, and the
	// decoder replays its shadow copies.
	second := enc.AppendFrame(nil, frame, nil, nil, []uint64{5, 6}, nil)
	if enc.LastRef != 2 || enc.LastInline != 0 {
		t.Fatalf("second frame: inline=%d ref=%d", enc.LastInline, enc.LastRef)
	}
	if len(second) >= len(first) {
		t.Fatalf("reference frame (%d bytes) not smaller than keyframe (%d)", len(second), len(first))
	}
	r2, err := dec.Decode(second)
	if err != nil {
		t.Fatal(err)
	}
	if r2.Tools.TotalPoints() != r1.Tools.TotalPoints() {
		t.Fatalf("reference decode lost points: %d vs %d", r2.Tools.TotalPoints(), r1.Tools.TotalPoints())
	}
	for i := range r1.Tools.Geoms {
		for p := range r1.Tools.Geoms[i].Points {
			if r2.Tools.Geoms[i].Points[p] != r1.Tools.Geoms[i].Points[p] {
				t.Fatalf("geom %d point %d differs across the reference", i, p)
			}
		}
	}

	// Bump one tool's sequence: that geom re-inlines, the other stays a
	// reference.
	third := enc.AppendFrame(nil, frame, nil, nil, []uint64{7, 6}, nil)
	if enc.LastInline != 1 || enc.LastRef != 1 {
		t.Fatalf("third frame: inline=%d ref=%d", enc.LastInline, enc.LastRef)
	}
	if _, err := dec.Decode(third); err != nil {
		t.Fatal(err)
	}

	// A fresh decoder sees the all-reference frame as a protocol error
	// (never-sent shadow), not a silent empty.
	if _, err := NewFrameDecoder(q).Decode(second); err == nil {
		t.Fatal("fresh decoder accepted a reference to a never-sent tool")
	}
}

// TestToolGeomV2RoundTrip: quantized tool points survive encode/decode
// within the quantizer's cell size.
func TestToolGeomV2RoundTrip(t *testing.T) {
	q := Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(10, 10, 10)}
	g := ToolGeom{Tool: 3, Points: []vmath.Vec3{
		vmath.V3(0, 0, 0), vmath.V3(10, 10, 10), vmath.V3(3.14, 2.72, 1.41),
	}}
	seg := AppendToolGeomV2(nil, g, q)
	got, pts, err := decodeToolGeomV2(seg, q, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if got.Tool != 3 || pts != 3 || len(got.Points) != 3 {
		t.Fatalf("decoded tool=%d pts=%d", got.Tool, pts)
	}
	step := 10.0 / 65535
	for i, p := range got.Points {
		d := p.Sub(g.Points[i])
		if absf32(d.X) > float32(2*step) || absf32(d.Y) > float32(2*step) || absf32(d.Z) > float32(2*step) {
			t.Fatalf("point %d error %v exceeds quantization step", i, d)
		}
	}
	// Point budget enforcement.
	if _, _, err := decodeToolGeomV2(seg, q, 2); err == nil {
		t.Fatal("budget-exceeding tool geom accepted")
	}
}

func absf32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}
