package wire

import (
	"bytes"
	"strings"
	"testing"
)

// relayRequests is the round-trip corpus for the upstream leg: empty
// cache, marker-eligible cache state, and a populated v2 shadow.
var relayRequests = []RelayFrameRequest{
	{},
	{LastRound: 7, Update: []byte{1, 2, 3}},
	{
		WantSegs:  true,
		LastRound: 41,
		Update:    bytes.Repeat([]byte{0xab}, 64),
		Shadow: []RelayShadowEntry{
			{Rake: 1, Seq: 9},
			{Rake: 12, Seq: 1},
			{Rake: -3, Seq: 1 << 40}, // hostile-ish ids must survive the trip
		},
	},
}

func TestRelayFrameRequestRoundTrip(t *testing.T) {
	for i, req := range relayRequests {
		buf := AppendRelayFrameRequest(nil, req)
		got, err := DecodeRelayFrameRequest(buf)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if got.WantSegs != req.WantSegs || got.LastRound != req.LastRound {
			t.Errorf("request %d: header = (%v, %d), want (%v, %d)",
				i, got.WantSegs, got.LastRound, req.WantSegs, req.LastRound)
		}
		if !bytes.Equal(got.Update, req.Update) {
			t.Errorf("request %d: update bytes differ", i)
		}
		if len(got.Shadow) != len(req.Shadow) {
			t.Fatalf("request %d: %d shadow entries, want %d", i, len(got.Shadow), len(req.Shadow))
		}
		for j, e := range req.Shadow {
			if got.Shadow[j] != e {
				t.Errorf("request %d shadow %d = %+v, want %+v", i, j, got.Shadow[j], e)
			}
		}
	}
}

func TestRelayShadowHas(t *testing.T) {
	req := RelayFrameRequest{Shadow: []RelayShadowEntry{{Rake: 1, Seq: 9}, {Rake: 2, Seq: 4}}}
	if !req.ShadowHas(1, 9) || !req.ShadowHas(2, 4) {
		t.Error("held entries not found")
	}
	// A stale sequence number must not match: the relay holds an old
	// segment and the origin must inline the new one.
	if req.ShadowHas(1, 10) || req.ShadowHas(3, 9) {
		t.Error("phantom shadow entry matched")
	}
}

// relayReplies is the round-trip corpus for the downstream answer:
// marker, bare v1 full, and a full with a mixed inline/reference
// geometry directory.
var relayReplies = []RelayFrameReply{
	{Round: 3},
	{Full: true, Round: 9, Frame: []byte{CodecV1, 0, 0}},
	{
		Full:   true,
		Round:  10,
		Frame:  bytes.Repeat([]byte{0x5c}, 48),
		HasDir: true,
		Dir: []RelaySegment{
			{Rake: 1, Seq: 4, Inline: true, Seg: []byte{9, 9, 9}},
			{Rake: 2, Seq: 17}, // reference: the shadow already holds it
			{Rake: 5, Seq: 1, Inline: true, Seg: nil},
		},
	},
}

func TestRelayFrameReplyRoundTrip(t *testing.T) {
	for i, rep := range relayReplies {
		buf := AppendRelayFrameReply(nil, rep)
		got, err := DecodeRelayFrameReply(buf)
		if err != nil {
			t.Fatalf("reply %d: %v", i, err)
		}
		if got.Full != rep.Full || got.Round != rep.Round || got.HasDir != rep.HasDir {
			t.Errorf("reply %d: header = (%v, %d, %v), want (%v, %d, %v)",
				i, got.Full, got.Round, got.HasDir, rep.Full, rep.Round, rep.HasDir)
		}
		if !bytes.Equal(got.Frame, rep.Frame) {
			t.Errorf("reply %d: frame bytes differ", i)
		}
		if len(got.Dir) != len(rep.Dir) {
			t.Fatalf("reply %d: %d dir entries, want %d", i, len(got.Dir), len(rep.Dir))
		}
		for j, e := range rep.Dir {
			g := got.Dir[j]
			if g.Rake != e.Rake || g.Seq != e.Seq || g.Inline != e.Inline || !bytes.Equal(g.Seg, e.Seg) {
				t.Errorf("reply %d dir %d = %+v, want %+v", i, j, g, e)
			}
		}
	}
}

// TestRelayMarkerEncoding pins AppendRelayMarker against the general
// reply encoder: a marker is the common steady-state answer, and both
// paths must stay byte-identical for the relay cache comparison to be
// meaningful.
func TestRelayMarkerEncoding(t *testing.T) {
	a := AppendRelayMarker(nil, 77)
	b := AppendRelayFrameReply(nil, RelayFrameReply{Round: 77})
	if !bytes.Equal(a, b) {
		t.Fatalf("marker encodings diverge: % x vs % x", a, b)
	}
	if len(a) != 9 { // kind byte + 8-byte round: the cheap upstream answer
		t.Errorf("marker is %d bytes, want 9", len(a))
	}
}

// TestRelayDecodeTruncation feeds every strict prefix of each valid
// message to the decoders: network reads truncate at arbitrary byte
// boundaries, and a truncated relay message must error, never panic and
// never decode to a plausible value.
func TestRelayDecodeTruncation(t *testing.T) {
	for i, req := range relayRequests {
		buf := AppendRelayFrameRequest(nil, req)
		for n := 0; n < len(buf); n++ {
			if _, err := DecodeRelayFrameRequest(buf[:n]); err == nil {
				t.Fatalf("request %d truncated to %d/%d bytes decoded cleanly", i, n, len(buf))
			}
		}
	}
	for i, rep := range relayReplies {
		buf := AppendRelayFrameReply(nil, rep)
		for n := 0; n < len(buf); n++ {
			if _, err := DecodeRelayFrameReply(buf[:n]); err == nil {
				t.Fatalf("reply %d truncated to %d/%d bytes decoded cleanly", i, n, len(buf))
			}
		}
	}
}

func TestRelayDecodeHostileInput(t *testing.T) {
	// Trailing garbage after a well-formed message.
	req := append(AppendRelayFrameRequest(nil, relayRequests[1]), 0xee)
	if _, err := DecodeRelayFrameRequest(req); err == nil || !strings.Contains(err.Error(), "trailing") {
		t.Errorf("trailing request bytes: err = %v", err)
	}
	for i, rep := range relayReplies {
		buf := append(AppendRelayFrameReply(nil, rep), 0xee)
		if _, err := DecodeRelayFrameReply(buf); err == nil || !strings.Contains(err.Error(), "trailing") {
			t.Errorf("trailing reply bytes (%d): err = %v", i, err)
		}
	}

	// A tiny message claiming a huge shadow count must be rejected by
	// the entity bound, not allocated.
	hostile := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0 /* round */, 0 /* update len */}
	hostile = append(hostile, 0xff, 0xff, 0xff, 0x7f) // shadow count ~ 2^28
	if _, err := DecodeRelayFrameRequest(hostile); err == nil {
		t.Error("hostile shadow count accepted")
	}

	// Unknown reply and segment kinds.
	if _, err := DecodeRelayFrameReply([]byte{9, 0, 0, 0, 0, 0, 0, 0, 0}); err == nil {
		t.Error("unknown reply kind accepted")
	}
	bad := AppendRelayFrameReply(nil, relayReplies[2])
	// Corrupt the first directory entry's kind byte. The inline entry
	// encodes as rake, seq, kind, seglen, seg — so the kind byte sits
	// two bytes before the distinctive segment payload.
	bad[bytes.Index(bad, []byte{9, 9, 9})-2] = 0x7e
	if _, err := DecodeRelayFrameReply(bad); err == nil {
		t.Error("unknown segment kind accepted")
	}
}

// Fuzz targets for the relay codec: like the other wire decoders these
// parse bytes straight off the network and must never panic. A clean
// decode must also survive re-encoding (round-trip closure).

func FuzzDecodeRelayFrameRequest(f *testing.F) {
	f.Add([]byte{})
	for _, req := range relayRequests {
		f.Add(AppendRelayFrameRequest(nil, req))
	}
	f.Add([]byte{0xff, 0xff, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		req, err := DecodeRelayFrameRequest(data)
		if err != nil {
			return
		}
		back, err := DecodeRelayFrameRequest(AppendRelayFrameRequest(nil, req))
		if err != nil {
			t.Fatalf("re-encoded request does not decode: %v", err)
		}
		if back.LastRound != req.LastRound || len(back.Shadow) != len(req.Shadow) {
			t.Fatal("request round-trip not closed")
		}
	})
}

func FuzzDecodeRelayFrameReply(f *testing.F) {
	f.Add([]byte{})
	for _, rep := range relayReplies {
		f.Add(AppendRelayFrameReply(nil, rep))
	}
	f.Add([]byte{1, 0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff})
	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeRelayFrameReply(data)
		if err != nil {
			return
		}
		back, err := DecodeRelayFrameReply(AppendRelayFrameReply(nil, rep))
		if err != nil {
			t.Fatalf("re-encoded reply does not decode: %v", err)
		}
		if back.Full != rep.Full || back.Round != rep.Round || len(back.Dir) != len(rep.Dir) {
			t.Fatal("reply round-trip not closed")
		}
	})
}
