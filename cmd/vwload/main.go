// Command vwload is the multi-workstation load generator: it stands up
// an in-process windtunnel server and drives it with K simulated
// workstations over netsim pipes, each running the hello/frame loop at
// a target frame rate — the scale-out experiment for the encode-once
// fan-out and the shared timestep cache. It reports rounds computed,
// frames encoded vs shipped (the fan-out factor), per-session latency
// percentiles, and cache hit rates.
//
// Usage:
//
//	vwload -sessions 64 -frames 100 -fps 10
//	vwload -data data/cyl -sessions 32 -resident=false -diskbw 40 -cachesteps 8
//	vwload -sessions 16 -bw 10 -latency 5ms   # shaped workstation links
//	vwload -sessions 1024 -relays 8 -hops 2   # cluster tier: leaves + mid relay
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/datasets"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/netsim"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vwload: ")

	var (
		data     = flag.String("data", "", "dataset directory from vwgen (empty = generate a synthetic dataset)")
		steps    = flag.Int("steps", 8, "synthetic dataset timesteps (when -data is empty)")
		sessions = flag.Int("sessions", 64, "simulated workstations")
		frames   = flag.Int("frames", 100, "frame exchanges per workstation")
		fps      = flag.Float64("fps", 10, "per-workstation target frame rate (0 = unpaced; the paper targets 10)")
		rakes    = flag.Int("rakes", 2, "streamline rakes in the shared scene")
		seeds    = flag.Int("seeds", 8, "seeds per rake")
		active   = flag.Int("active", 1, "workstations that move their hand every frame (forcing re-encodes)")
		play     = flag.Bool("play", true, "run looping playback so timesteps stream through the store")
		resident = flag.Bool("resident", false, "serve the dataset from memory instead of disk")
		diskBW   = flag.Int64("diskbw", 0, "simulated disk bandwidth in MB/s when streaming (0 = unthrottled)")
		prefetch = flag.Bool("prefetch", true, "overlap next-timestep loads with computation when streaming")
		cacheN   = flag.Int("cachesteps", 4, "shared timestep cache capacity in steps (0 = uncapped on that axis)")
		cacheMB  = flag.Int64("cachemb", 0, "shared timestep cache budget in MB (0 = uncapped on that axis)")
		bw       = flag.Int64("bw", 0, "per-workstation link bandwidth in MB/s (0 = unconstrained)")
		latency  = flag.Duration("latency", 0, "per-workstation link latency per message")
		budget   = flag.Duration("budget", 0, "per-frame integration budget for the governor (0 = disabled; vwserver defaults to 100ms)")
		codec    = flag.Int("codec", 2, "frame codec each workstation requests: 1 = classic full frames, 2 = delta/quantized")
		relays   = flag.Int("relays", 0, "leaf relay/cache nodes between the fleet and the origin (0 = direct connect)")
		hops     = flag.Int("hops", 1, "relay tier depth with -relays: 1 = leaves on the origin, 2 = leaves through one mid relay")
		maxDrop  = flag.Float64("maxdropped", 0, "tolerated fraction of dropped latency samples before the run fails (0 = any failure fails)")

		live       = flag.Bool("live", false, "in-situ mode: drive the fleet against a live solver producer instead of stored timesteps")
		liveRes    = flag.Int("liveres", 16, "live solver X resolution")
		liveWindow = flag.Int("livewindow", 16, "live history window in timesteps (0 = keep all)")
		steerEvery = flag.Int("steerevery", 0, "workstation 0 pushes a steering change every N frames (0 = no steering churn)")
		toolsEvery = flag.Int("tools", 0, "shared-tool mix: enable isosurface + cutting plane + vortex cores and have workstation 0 nudge them every N frames (0 = no tools)")
	)
	flag.Parse()
	if *codec < 1 || *codec > 2 {
		log.Fatalf("-codec %d: must be 1 or 2", *codec)
	}

	var (
		st      store.Store
		lv      *datasets.Live
		cleanup = func() {}
		err     error
	)
	if *live {
		lv, err = datasets.NewLive(
			datasets.Spec{NI: 24, NJ: 32, NK: 8, NumSteps: *steps * *frames, DT: 0.6},
			datasets.LiveOptions{
				Solver: datasets.SolverOptions{Resolution: *liveRes, SpinupSteps: 10},
				Window: *liveWindow,
			})
		if err != nil {
			log.Fatal(err)
		}
		st = lv.Ring()
	} else {
		st, cleanup, err = openStore(*data, *steps, *resident, *diskBW)
		if err != nil {
			log.Fatal(err)
		}
	}
	defer cleanup()

	def := datasets.DefaultSteer()
	srv, err := server.New(server.Config{
		Store:      st,
		Prefetch:   !*resident && *prefetch && !*live,
		CacheSteps: *cacheN,
		CacheBytes: *cacheMB << 20,
		Budget:     *budget,
		Steer:      env.SteerParams{InflowU: def.InflowU, Reynolds: def.Reynolds, Taper: def.Taper},
	})
	if err != nil {
		log.Fatal(err)
	}
	defer srv.Dlib().Close()
	if lv != nil {
		e := srv.Env()
		lv.SetSteerSource(func() (datasets.Steering, uint64) {
			s := e.Steer()
			return datasets.Steering{
				InflowU:  s.Params.InflowU,
				Reynolds: s.Params.Reynolds,
				Taper:    s.Params.Taper,
			}, s.Version
		})
	}

	g := st.Grid()
	mode := storageMode(*resident)
	if lv != nil {
		mode = "live solver"
	}
	log.Printf("dataset: %dx%dx%d, %d steps (%s); fleet: %d workstations x %d frames at %g fps",
		g.NI, g.NJ, g.NK, st.NumSteps(), mode, *sessions, *frames, *fps)

	rep, err := server.RunLoad(srv, server.LoadOptions{
		Sessions:       *sessions,
		Frames:         *frames,
		FrameRate:      *fps,
		Rakes:          *rakes,
		SeedsPerRake:   *seeds,
		ActiveUsers:    *active,
		Play:           *play,
		Codec:          uint8(*codec),
		Relays:         *relays,
		RelayHops:      *hops,
		MaxDroppedFrac: *maxDrop,
		SteerEvery:     *steerEvery,
		ToolsEvery:     *toolsEvery,
		Link: netsim.Link{
			BandwidthBytesPerSec: *bw << 20,
			Latency:              *latency,
		},
	})
	if err != nil {
		log.Printf("run error: %v", err)
	}

	fmt.Println(rep)
	delivered, deliveredBytes := rep.Delivered()
	achieved := float64(delivered) / rep.Elapsed.Seconds() / float64(rep.Sessions)
	fmt.Printf("per-session rate: %.1f frames/s (target %g)\n", achieved, *fps)
	fmt.Printf("rounds computed=%d encoded=%d reused=%d; delivered %d frames (%.1fx fan-out), %.1f MB, %.0f bytes/frame (codec v%d)\n",
		rep.Rounds, rep.FramesEncoded, rep.FramesReused,
		delivered, rep.FanOut(), float64(deliveredBytes)/(1<<20),
		rep.BytesPerFrame(), *codec)
	if rep.DroppedSamples > 0 {
		fmt.Printf("dropped %d/%d latency samples (tolerating up to %.1f%%)\n",
			rep.DroppedSamples, *sessions**frames, 100**maxDrop)
	}
	fmt.Printf("latency: p50=%v p90=%v p99=%v max=%v mean=%v\n",
		rep.Latency.P50.Round(time.Microsecond), rep.Latency.P90.Round(time.Microsecond),
		rep.Latency.P99.Round(time.Microsecond), rep.Latency.Max.Round(time.Microsecond),
		rep.Latency.Mean.Round(time.Microsecond))
	if *budget > 0 {
		fmt.Printf("governor: budget=%v predicted(avg)=%v shed=%d/%d rounds\n",
			*budget, avgDur(rep.PredictedTime, rep.FramesEncoded),
			rep.FramesShed, rep.FramesEncoded)
	}
	if rep.ToolsComputed > 0 || rep.ToolsReused > 0 {
		fmt.Printf("shared tools: computed=%d reused=%d points=%d\n",
			rep.ToolsComputed, rep.ToolsReused, rep.ToolPoints)
	}
	if rep.HasCache {
		c := rep.Cache
		fmt.Printf("timestep cache: hits=%d misses=%d coalesced=%d evictions=%d resident=%d steps (%.1f MB) hit rate %.1f%%\n",
			c.Hits, c.Misses, c.Coalesced, c.Evictions,
			c.ResidentSteps, float64(c.ResidentBytes)/(1<<20), 100*c.HitRate())
	}
	if rs, ok := srv.LiveStats(); ok {
		stc := srv.Env().Steer()
		fmt.Printf("live producer: produced=%d recycled=%d deferred=%d clamped=%d liveclamps=%d steer changes=%d (U=%.2f Re=%.0f taper=%.2f)\n",
			rs.Produced, rs.Recycled, rs.Deferred, rs.Clamped,
			srv.Stats().LiveClamps, stc.Version,
			stc.Params.InflowU, stc.Params.Reynolds, stc.Params.Taper)
	}
	fmt.Printf("pipeline: %s\n", srv.Recorder().Snapshot())
	if rep.Errors > 0 {
		os.Exit(1)
	}
}

// openStore opens or synthesizes the dataset in the requested storage
// regime. The returned cleanup removes any temporary on-disk copy.
func openStore(dir string, steps int, resident bool, diskMBps int64) (store.Store, func(), error) {
	noop := func() {}
	if dir == "" {
		spec := datasets.Spec{NI: 24, NJ: 32, NK: 8, NumSteps: steps, DT: 0.6}
		phys, err := datasets.AnalyticPhysical(spec)
		if err != nil {
			return nil, noop, err
		}
		u, err := phys.ToGridCoords()
		if err != nil {
			return nil, noop, err
		}
		if resident {
			return store.NewMemory(u), noop, nil
		}
		// Disk regime wants real files: spill the synthetic dataset to
		// a temp dir and stream it back.
		tmp, err := os.MkdirTemp("", "vwload-*")
		if err != nil {
			return nil, noop, err
		}
		cleanup := func() { os.RemoveAll(tmp) }
		dsDir := filepath.Join(tmp, "ds")
		if err := store.WriteDataset(dsDir, u); err != nil {
			cleanup()
			return nil, noop, err
		}
		d, err := store.OpenDisk(dsDir, store.DiskOptions{BandwidthBytesPerSec: diskMBps << 20})
		if err != nil {
			cleanup()
			return nil, noop, err
		}
		return d, cleanup, nil
	}
	disk, err := store.OpenDisk(dir, store.DiskOptions{BandwidthBytesPerSec: diskMBps << 20})
	if err != nil {
		return nil, noop, err
	}
	if !resident {
		return disk, noop, nil
	}
	stepsData := make([]*field.Field, disk.NumSteps())
	for t := range stepsData {
		if stepsData[t], err = disk.LoadStep(t); err != nil {
			return nil, noop, err
		}
	}
	u, err := field.NewUnsteady(disk.Grid(), stepsData, disk.DT())
	if err != nil {
		return nil, noop, err
	}
	return store.NewMemory(u), noop, nil
}

// avgDur returns total/n rounded for display, or 0 when n is 0.
func avgDur(total time.Duration, n int64) time.Duration {
	if n == 0 {
		return 0
	}
	return (total / time.Duration(n)).Round(time.Microsecond)
}

func storageMode(resident bool) string {
	if resident {
		return "memory-resident"
	}
	return "disk-streamed"
}
