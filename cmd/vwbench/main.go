// Command vwbench regenerates every table and figure in the paper's
// evaluation, plus the architecture measurements and ablations
// DESIGN.md calls out.
//
// Usage:
//
//	vwbench                  # everything
//	vwbench -table 1         # just Table 1 (arithmetic + measured)
//	vwbench -table 3
//	vwbench -figure 2        # writes figures/fig2_streamlines_t0.ppm
//	vwbench -bench engines   # the Sec 5.3 engine benchmark
//	vwbench -bench pipeline  # figure 8
//	vwbench -bench client    # figure 9
//	vwbench -bench dlibio    # figures 6/7
//	vwbench -bench ablations
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/bench"
	"repro/internal/field"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vwbench: ")

	var (
		table   = flag.Int("table", 0, "regenerate one table (1-3), 0 = per other flags")
		figure  = flag.Int("figure", 0, "regenerate one figure (1-3)")
		name    = flag.String("bench", "", "run one bench: engines | pipeline | client | dlibio | multiblock | ablations")
		figDir  = flag.String("figdir", "figures", "output directory for figure PPMs")
		measure = flag.Bool("measure", true, "include measured (not just arithmetic) variants")
		all     = flag.Bool("all", false, "run everything")
	)
	flag.Parse()
	if *table == 0 && *figure == 0 && *name == "" {
		*all = true
	}

	r := runner{figDir: *figDir, measure: *measure}
	switch {
	case *all:
		r.tables(1, 2, 3)
		r.figures(1, 2, 3, 4)
		r.bench("engines")
		r.bench("pipeline")
		r.bench("client")
		r.bench("dlibio")
		r.bench("multiblock")
		r.bench("ablations")
	default:
		if *table != 0 {
			r.tables(*table)
		}
		if *figure != 0 {
			r.figures(*figure)
		}
		if *name != "" {
			r.bench(*name)
		}
	}
}

type runner struct {
	figDir  string
	measure bool
	dataset *field.Unsteady
}

func (r *runner) data() *field.Unsteady {
	if r.dataset == nil {
		log.Printf("building synthetic tapered-cylinder dataset")
		u, err := bench.BuildDataset(bench.DefaultDatasetSpec())
		if err != nil {
			log.Fatal(err)
		}
		r.dataset = u
	}
	return r.dataset
}

func (r *runner) print(t *bench.Table, err error) {
	if err != nil {
		log.Fatal(err)
	}
	if err := t.Fprint(os.Stdout); err != nil {
		log.Fatal(err)
	}
}

func (r *runner) tables(nums ...int) {
	for _, n := range nums {
		switch n {
		case 1:
			r.print(bench.Table1(), nil)
			if r.measure {
				r.print(bench.Table1Measured(5))
			}
		case 2:
			r.print(bench.Table2(), nil)
		case 3:
			r.print(bench.Table3(), nil)
		default:
			log.Fatalf("no table %d (paper has tables 1-3)", n)
		}
	}
}

func (r *runner) figures(nums ...int) {
	u := r.data()
	for _, n := range nums {
		switch n {
		case 1:
			res, err := bench.Figure1(u, filepath.Join(r.figDir, "fig1_streaklines.ppm"))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nfigure 1 (streaklines as smoke): %s\n  %d filaments, %d particles, %d lit pixels\n",
				res.Path, res.Lines, res.Points, res.LitPixels)
		case 2:
			res, err := bench.Figure2(u, filepath.Join(r.figDir, "fig2_streamlines_t0.ppm"))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nfigure 2 (streamlines, early time): %s\n  %d streamlines, %d points, %d lit pixels\n",
				res.Path, res.Lines, res.Points, res.LitPixels)
		case 3:
			res, div, err := bench.Figure3(u, filepath.Join(r.figDir, "fig3_streamlines_t1.ppm"))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nfigure 3 (same seeds, later time): %s\n  %d streamlines, %d points, %d lit pixels\n",
				res.Path, res.Lines, res.Points, res.LitPixels)
			fmt.Printf("  mean path divergence vs figure 2: %.3f units (unsteadiness)\n", div)
		case 4:
			res, err := bench.FigureIsosurface(u, filepath.Join(r.figDir, "fig4_isosurface_bonus.ppm"))
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("\nbonus figure (offline isosurface tool): %s\n  %d triangles, %d lit pixels\n",
				res.Path, res.Lines, res.LitPixels)
		default:
			log.Fatalf("no figure %d (1-3 from the paper, 4 = bonus isosurface)", n)
		}
	}
}

func (r *runner) bench(name string) {
	switch name {
	case "engines":
		r.print(bench.EngineBench())
	case "pipeline":
		r.print(bench.Fig8Pipeline(r.data(), 30<<20, 20))
	case "client":
		r.print(bench.Fig9Client(r.data(), 20*time.Millisecond, 10))
	case "dlibio":
		r.print(bench.Fig67DlibIO(r.data()))
	case "multiblock":
		r.print(bench.MultiblockBench())
	case "ablations":
		r.print(bench.AblationIntegrators())
		r.print(bench.AblationGridCoords(r.data(), 1000))
		r.print(bench.AblationEncoding(10000), nil)
		r.print(bench.AblationIsosurface())
		r.print(bench.AblationVectorLength())
	default:
		log.Fatalf("unknown bench %q", name)
	}
}
