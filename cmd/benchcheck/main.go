// Command benchcheck is the bench-regression tripwire: it runs the
// frame-pipeline benchmarks (one multi-rake session, and the
// multi-session fan-out) and compares ns/op, B/op, and allocs/op
// against the checked-in baseline, failing when either time or
// allocation regresses past the tolerance. `make ci` runs it so an
// accidental allocation in the steady-state frame path — the thing the
// encode-once design exists to prevent — fails the gate instead of
// landing silently.
//
//	go run ./cmd/benchcheck            # compare against bench_baseline.json
//	go run ./cmd/benchcheck -update    # re-measure and rewrite the baseline
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/exec"
	"regexp"
	"strconv"
	"strings"
)

// Baseline is the checked-in measurement set.
type Baseline struct {
	// Benchtime records how the numbers were taken, for reproducibility.
	Benchtime  string               `json:"benchtime"`
	Benchmarks map[string]Benchmark `json:"benchmarks"`
	// Untracked names benchmarks deliberately outside the regression
	// gate (figure/table reproductions, ablations). Any benchmark in
	// the package that is neither matched by -bench nor listed here
	// fails the run: new benchmarks must opt in or opt out explicitly
	// instead of silently never running.
	Untracked []string `json:"untracked,omitempty"`
}

// Benchmark is one benchmark's recorded costs.
type Benchmark struct {
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
}

// benchLine matches one `go test -bench -benchmem` result row, e.g.
// BenchmarkServerFanoutFrame/sessions=8-16  100  163889 ns/op  1.000 encodes/op  68408 B/op  73 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([\d.]+) ns/op(.*)$`)

func main() {
	log.SetFlags(0)
	log.SetPrefix("benchcheck: ")
	var (
		baselinePath = flag.String("baseline", "bench_baseline.json", "baseline file")
		benchRe      = flag.String("bench", "BenchmarkServerMultiRakeFrame|BenchmarkServerFanoutFrame|BenchmarkRelayFanoutFrame|BenchmarkFrameEncodeV2|BenchmarkLiveProducerFrame|BenchmarkIsoToolFrame", "benchmarks to run")
		benchtime    = flag.String("benchtime", "200x", "go test -benchtime")
		pkg          = flag.String("pkg", ".", "package holding the benchmarks")
		factor       = flag.Float64("factor", 2.0, "regression threshold multiplier")
		slackNs      = flag.Float64("slack-ns", 50_000, "absolute ns/op slack on top of the factor (scheduler noise floor)")
		slackAllocs  = flag.Int64("slack-allocs", 2, "absolute allocs/op slack on top of the factor")
		update       = flag.Bool("update", false, "rewrite the baseline from this run instead of comparing")
	)
	flag.Parse()

	gate, err := regexp.Compile(*benchRe)
	if err != nil {
		log.Fatalf("-bench %q: %v", *benchRe, err)
	}

	got, raw, err := runBench(*pkg, *benchRe, *benchtime)
	if err != nil {
		log.Fatalf("bench run failed: %v\n%s", err, raw)
	}
	if len(got) == 0 {
		log.Fatalf("no benchmark results matched %q:\n%s", *benchRe, raw)
	}

	// The prior baseline also carries the untracked opt-out list; read
	// it even in -update mode so an update can't quietly drop it.
	base, baseErr := readBaseline(*baselinePath)

	if *update {
		b := Baseline{Benchtime: *benchtime, Benchmarks: got, Untracked: base.Untracked}
		buf, err := json.MarshalIndent(b, "", "  ")
		if err != nil {
			log.Fatal(err)
		}
		if err := os.WriteFile(*baselinePath, append(buf, '\n'), 0o644); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %d benchmarks to %s", len(got), *baselinePath)
		return
	}

	if baseErr != nil {
		log.Fatalf("%v (run with -update to create it)", baseErr)
	}

	// Coverage: every benchmark the package declares must be gated or
	// declared untracked — a benchmark the regex never matches would
	// otherwise never run and never be compared, a silent pass.
	listed, err := listBenchmarks(*pkg)
	if err != nil {
		log.Fatalf("benchmark list failed: %v", err)
	}
	var failures []string
	for _, name := range uncovered(listed, gate, base.Untracked) {
		failures = append(failures, fmt.Sprintf(
			"%s: not matched by -bench %q and not in the baseline's untracked list — gate it or opt it out",
			name, *benchRe))
	}
	for name, cur := range got {
		want, ok := base.Benchmarks[name]
		if !ok {
			failures = append(failures,
				fmt.Sprintf("%s: no baseline entry (run benchcheck -update)", name))
			continue
		}
		// Time: factor plus an absolute noise floor — microbenchmark
		// ns/op on a busy machine jitters, but a real regression in this
		// code (a lost memo, a per-frame allocation) blows through 2x by
		// an order of magnitude.
		if limit := want.NsPerOp**factor + *slackNs; cur.NsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op exceeds %.0f (baseline %.0f x%.1f + %.0f slack)",
				name, cur.NsPerOp, limit, want.NsPerOp, *factor, *slackNs))
		}
		// Allocations are near-deterministic: the factor alone, with a
		// couple of allocs of slack for runtime-internal variation.
		if limit := int64(float64(want.AllocsPerOp)**factor) + *slackAllocs; cur.AllocsPerOp > limit {
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op exceeds %d (baseline %d x%.1f + %d slack)",
				name, cur.AllocsPerOp, limit, want.AllocsPerOp, *factor, *slackAllocs))
		}
		fmt.Printf("%-60s %10.0f ns/op (base %.0f)  %5d allocs/op (base %d)\n",
			name, cur.NsPerOp, want.NsPerOp, cur.AllocsPerOp, want.AllocsPerOp)
	}
	for name := range base.Benchmarks {
		if _, ok := got[name]; !ok {
			failures = append(failures,
				fmt.Sprintf("%s: in baseline but not measured — benchmark renamed or deleted?", name))
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			log.Printf("FAIL %s", f)
		}
		os.Exit(1)
	}
	log.Printf("ok: %d benchmarks within tolerance", len(got))
}

// listBenchmarks enumerates every top-level benchmark the package
// declares, independent of what -bench selects.
func listBenchmarks(pkg string) ([]string, error) {
	cmd := exec.Command("go", "test", "-run", "xxx", "-list", "^Benchmark", pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, fmt.Errorf("%v\n%s", err, out)
	}
	var names []string
	for _, line := range strings.Split(string(out), "\n") {
		line = strings.TrimSpace(line)
		if strings.HasPrefix(line, "Benchmark") {
			names = append(names, line)
		}
	}
	return names, nil
}

// uncovered returns the benchmarks that would silently never run: not
// matched by the gate regex and not opted out via the baseline's
// untracked list.
func uncovered(listed []string, gate *regexp.Regexp, untracked []string) []string {
	skip := make(map[string]bool, len(untracked))
	for _, n := range untracked {
		skip[n] = true
	}
	var missing []string
	for _, name := range listed {
		if !gate.MatchString(name) && !skip[name] {
			missing = append(missing, name)
		}
	}
	return missing
}

// runBench executes the benchmarks and parses the -benchmem rows.
func runBench(pkg, re, benchtime string) (map[string]Benchmark, string, error) {
	cmd := exec.Command("go", "test", "-run", "xxx",
		"-bench", re, "-benchmem", "-benchtime", benchtime, pkg)
	out, err := cmd.CombinedOutput()
	if err != nil {
		return nil, string(out), err
	}
	results := map[string]Benchmark{}
	for _, line := range strings.Split(string(out), "\n") {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(line))
		if m == nil {
			continue
		}
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			continue
		}
		b := Benchmark{NsPerOp: ns}
		rest := m[3]
		if bm := regexp.MustCompile(`(\d+) B/op`).FindStringSubmatch(rest); bm != nil {
			b.BytesPerOp, _ = strconv.ParseInt(bm[1], 10, 64)
		}
		if am := regexp.MustCompile(`(\d+) allocs/op`).FindStringSubmatch(rest); am != nil {
			b.AllocsPerOp, _ = strconv.ParseInt(am[1], 10, 64)
		}
		results[m[1]] = b
	}
	return results, string(out), nil
}

func readBaseline(path string) (Baseline, error) {
	var b Baseline
	buf, err := os.ReadFile(path)
	if err != nil {
		return b, fmt.Errorf("baseline %s unreadable: %w", path, err)
	}
	if err := json.Unmarshal(buf, &b); err != nil {
		return b, fmt.Errorf("baseline %s corrupt: %w", path, err)
	}
	return b, nil
}
