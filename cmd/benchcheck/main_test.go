package main

import (
	"reflect"
	"regexp"
	"testing"
)

// TestUncovered is the regression for the silent pass on unknown
// benchmarks: a benchmark the -bench regex never matches used to never
// run and never be compared — no failure, no trace. It must now be
// reported unless the baseline explicitly opts it out.
func TestUncovered(t *testing.T) {
	gate := regexp.MustCompile("BenchmarkServerMultiRakeFrame|BenchmarkFrameEncodeV2")
	listed := []string{
		"BenchmarkServerMultiRakeFrame",  // gated
		"BenchmarkFrameEncodeV2",         // gated
		"BenchmarkTable1NetworkTransfer", // opted out
		"BenchmarkRelayFanoutFrame",      // neither: must be reported
	}
	untracked := []string{"BenchmarkTable1NetworkTransfer"}

	got := uncovered(listed, gate, untracked)
	want := []string{"BenchmarkRelayFanoutFrame"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("uncovered() = %v, want %v", got, want)
	}

	// Fully covered packages report nothing.
	if got := uncovered(listed[:3], gate, untracked); got != nil {
		t.Errorf("covered set reported %v", got)
	}
	// An empty untracked list gives no free passes.
	if got := uncovered([]string{"BenchmarkNew"}, gate, nil); len(got) != 1 {
		t.Errorf("unknown benchmark with no opt-outs: %v", got)
	}
}

// TestBenchLineParsing pins the -benchmem row parser against real
// `go test -bench` output shapes, including extra custom metrics.
func TestBenchLineParsing(t *testing.T) {
	m := benchLine.FindStringSubmatch(
		"BenchmarkServerFanoutFrame/sessions=8-16  100  163889 ns/op  1.000 encodes/op  68408 B/op  73 allocs/op")
	if m == nil {
		t.Fatal("row with custom metrics did not parse")
	}
	if m[1] != "BenchmarkServerFanoutFrame/sessions=8" {
		t.Errorf("name = %q", m[1])
	}
	if m[2] != "163889" {
		t.Errorf("ns/op = %q", m[2])
	}
	if benchLine.FindStringSubmatch("ok  \trepro\t0.3s") != nil {
		t.Error("non-benchmark line parsed as a result")
	}
}
