// Command vwgen generates unsteady flowfield datasets for the virtual
// windtunnel, standing in for the pre-computed Navier-Stokes solutions
// the paper visualized. Two sources are available: the analytic
// tapered-cylinder shedding model (fast, arbitrary resolution) and the
// internal Navier-Stokes solver (slower, genuinely simulated).
//
// Usage:
//
//	vwgen -out data/cyl -ni 32 -nj 48 -nk 12 -steps 24
//	vwgen -out data/ns  -source solver -steps 16
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"repro/internal/datasets"
	"repro/internal/field"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vwgen: ")

	var (
		out    = flag.String("out", "", "output dataset directory (required)")
		source = flag.String("source", "analytic", "dataset source: analytic | solver")
		ni     = flag.Int("ni", 32, "radial grid nodes")
		nj     = flag.Int("nj", 48, "circumferential grid nodes")
		nk     = flag.Int("nk", 12, "spanwise grid nodes")
		steps  = flag.Int("steps", 24, "number of timesteps")
		dt     = flag.Float64("dt", 0.6, "flow time between timesteps")
		res    = flag.Int("solver-res", 48, "solver cells along X (solver source)")
		plot3d = flag.String("plot3d", "", "also export PLOT3D files (grid.xyz + step_NNNNNN.f) to this directory")
	)
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}
	spec := datasets.Spec{NI: *ni, NJ: *nj, NK: *nk, NumSteps: *steps, DT: float32(*dt)}
	if err := spec.Validate(); err != nil {
		log.Fatal(err)
	}
	log.Printf("grid: %dx%dx%d = %d nodes (%.2f MB/timestep)",
		spec.NI, spec.NJ, spec.NK, spec.NI*spec.NJ*spec.NK,
		float64(spec.NI*spec.NJ*spec.NK*12)/(1<<20))

	start := time.Now()
	var phys *field.Unsteady
	var err error
	switch *source {
	case "analytic":
		phys, err = datasets.AnalyticPhysical(spec)
	case "solver":
		phys, err = datasets.SolverPhysical(spec, datasets.SolverOptions{
			Resolution: *res,
			Workers:    runtime.GOMAXPROCS(0),
			Progress: func(step, total int) {
				log.Printf("solver: snapshot %d/%d", step, total)
			},
		})
	default:
		log.Fatalf("unknown source %q (want analytic or solver)", *source)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated %d physical timesteps in %v", phys.NumSteps(),
		time.Since(start).Round(time.Millisecond))

	u, err := phys.ToGridCoords()
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("converted to grid coordinates (Sec 2.1 preprocessing)")

	if err := store.WriteDataset(*out, u); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("wrote %d timesteps (%d bytes total) to %s\n",
		u.NumSteps(), u.SizeBytes(), *out)

	if *plot3d != "" {
		// PLOT3D consumers expect physical velocities.
		if err := exportPLOT3D(*plot3d, phys); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("exported PLOT3D files to %s\n", *plot3d)
	}
}

// exportPLOT3D writes the dataset in PLOT3D whole format for interop
// with classic NASA visualization tools.
func exportPLOT3D(dir string, u *field.Unsteady) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	gf, err := os.Create(filepath.Join(dir, "grid.xyz"))
	if err != nil {
		return err
	}
	if err := field.WritePLOT3DGrid(gf, u.Grid); err != nil {
		gf.Close()
		return err
	}
	if err := gf.Close(); err != nil {
		return err
	}
	for t, step := range u.Steps {
		sf, err := os.Create(filepath.Join(dir, fmt.Sprintf("step_%06d.f", t)))
		if err != nil {
			return err
		}
		if err := field.WritePLOT3DFunction(sf, step); err != nil {
			sf.Close()
			return err
		}
		if err := sf.Close(); err != nil {
			return err
		}
	}
	return nil
}
