// Command vwrelay runs a windtunnel cluster-tier node: a session
// router + frame relay/cache between workstations and one or more
// vwserver compute hosts (or further vwrelay nodes — the protocol
// chains). Each workstation session is pinned to one upstream, so
// identity and FCFS rake locks behave exactly as on a direct
// connection; frame content crosses the upstream link once per round
// per relay and is re-fanned locally, byte-identical per (client,
// round) for both codecs.
//
// Usage:
//
//	vwrelay -listen :9041 -upstream host1:9040,host2:9040
//	vwrelay -listen :9042 -upstream relayhost:9041   # chained tier
//	vwrelay -listen :9041 -upstream :9040 -debug localhost:6061
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro/internal/dlib"
	"repro/internal/obs"
	"repro/internal/relay"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vwrelay: ")

	var (
		listen   = flag.String("listen", "127.0.0.1:9041", "listen address for workstations (and chained relays)")
		upstream = flag.String("upstream", "", "comma-separated upstream vwserver/vwrelay addresses; sessions are pinned round-robin (required)")
		debug    = flag.String("debug", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address (empty = disabled)")
	)
	flag.Parse()
	if *upstream == "" {
		flag.Usage()
		os.Exit(2)
	}
	var dials []dlib.DialFunc
	for _, addr := range strings.Split(*upstream, ",") {
		addr := strings.TrimSpace(addr)
		if addr == "" {
			continue
		}
		dials = append(dials, func() (net.Conn, error) { return net.Dial("tcp", addr) })
	}

	r, err := relay.New(relay.Config{Upstreams: dials})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("relaying %s on %s (%d upstreams)", *upstream, ln.Addr(), len(dials))

	if *debug != "" {
		obs.PublishFunc("vwrelay.stats", func() any { return r.Stats() })
		dbg, err := obs.ServeDebug(*debug)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/)", dbg.Addr())
	}

	go func() {
		if err := r.Dlib().Serve(ln); err != nil {
			log.Printf("serve: %v", err)
		}
	}()

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s := r.Stats()
			if s.DownFrames == 0 {
				continue
			}
			log.Printf("sessions=%d down_frames=%d down=%.1fMB up_fulls=%d up_markers=%d hit=%.1f%% up=%.1fMB hangups=%d",
				s.Sessions, s.DownFrames, float64(s.DownBytes)/(1<<20),
				s.UpFulls, s.UpMarkers, 100*s.HitRate(),
				float64(s.UpBytes)/(1<<20), s.Hangups)
		case <-stop:
			log.Printf("shutting down")
			r.Dlib().Close()
			r.Close()
			return
		}
	}
}
