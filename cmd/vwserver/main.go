// Command vwserver runs the distributed virtual windtunnel's remote
// host — the Convex's role: it owns a dataset (resident in memory or
// streamed from disk), interprets user commands from any number of
// workstations over dlib, computes the visualization geometry, and
// ships it back (figure 8).
//
// Usage:
//
//	vwserver -data data/cyl -listen :9040
//	vwserver -data data/cyl -resident=false -diskbw 30 -prefetch
//	vwserver -data data/cyl -debug localhost:6060   # expvar + pprof
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"time"

	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/env"
	"repro/internal/field"
	"repro/internal/obs"
	"repro/internal/server"
	"repro/internal/store"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vwserver: ")

	var (
		data     = flag.String("data", "", "dataset directory from vwgen (required)")
		listen   = flag.String("listen", "127.0.0.1:9040", "listen address")
		resident = flag.Bool("resident", true, "load the whole dataset into memory (the 1 GB Convex mode); false streams from disk")
		diskBW   = flag.Int64("diskbw", 0, "simulated disk bandwidth in MB/s when streaming (0 = unthrottled; the Convex measured 30-50)")
		prefetch = flag.Bool("prefetch", true, "overlap next-timestep loads with computation when streaming")
		workers  = flag.Int("workers", 0, "computation worker count (0 = GOMAXPROCS)")
		vector   = flag.Bool("vector", false, "use the vectorized (SoA batch) engine")
		maxSeeds = flag.Int("maxseeds", 0, "per-rake seed count cap enforced on client commands (0 = default 4096)")
		cacheN   = flag.Int("cachesteps", 0, "shared timestep cache capacity in steps when streaming (0 with -cachemb 0 = no cache)")
		cacheMB  = flag.Int64("cachemb", 0, "shared timestep cache budget in MB when streaming (0 with -cachesteps 0 = no cache)")
		budget   = flag.Duration("budget", 100*time.Millisecond, "per-frame integration budget; the governor sheds load to hold it (0 = disabled, frames run unbounded)")
		codec    = flag.Int("codec", 2, "highest frame codec to negotiate: 1 = classic full frames only, 2 = allow delta/quantized (v1 clients still served byte-for-byte)")
		debug    = flag.String("debug", "", "serve expvar (/debug/vars) and pprof (/debug/pprof/) on this address, e.g. localhost:6060 (empty = disabled)")

		isoLevel  = flag.Float64("iso", 0, "seed the shared isosurface tool enabled at this speed iso-level (0 = tool subsystem untouched until a client enables it)")
		planeAxis = flag.Int("planeaxis", 0, "slicing axis for -planefrac: 0=I 1=J 2=K")
		planeFrac = flag.Float64("planefrac", -1, "seed the shared cutting plane enabled at this fractional position along -planeaxis (negative = off)")
		vortexQ   = flag.Float64("vortex", 0, "seed the shared vortex-core extractor enabled at this Q-criterion threshold (0 = off)")

		live       = flag.Bool("live", false, "in-situ mode: run the Navier-Stokes solver as a live timestep producer instead of serving a -data directory; workstations can steer inlet velocity / Reynolds / taper")
		liveRes    = flag.Int("liveres", 48, "live solver X resolution (Y and Z scale proportionally)")
		liveSteps  = flag.Int("livesteps", 1024, "live session horizon in produced timesteps")
		liveWindow = flag.Int("livewindow", 64, "live history window: timesteps kept behind the head for particle paths/streaklines (0 = keep all)")
		liveGrid   = flag.Int("livegrid", 64, "live sampling grid NI (NJ = NI, NK = NI/2)")
		liveDT     = flag.Float64("livedt", 0.2, "live snapshot interval in solver time units")
	)
	flag.Parse()
	if *data == "" && !*live {
		flag.Usage()
		os.Exit(2)
	}
	if *codec < 1 || *codec > 2 {
		log.Fatalf("-codec %d: must be 1 or 2", *codec)
	}
	var toolIso env.IsoParams
	if *isoLevel > 0 {
		toolIso = env.IsoParams{Enabled: true, Level: float32(*isoLevel)}
	}
	var toolPlane env.PlaneParams
	if *planeFrac >= 0 {
		if *planeAxis < 0 || *planeAxis > 2 {
			log.Fatalf("-planeaxis %d: must be 0, 1, or 2", *planeAxis)
		}
		if *planeFrac > 1 {
			log.Fatalf("-planefrac %v: must be in [0,1]", *planeFrac)
		}
		toolPlane = env.PlaneParams{Enabled: true, Axis: uint8(*planeAxis), Frac: float32(*planeFrac)}
	}
	var toolVortex env.VortexParams
	if *vortexQ != 0 {
		toolVortex = env.VortexParams{Enabled: true, Threshold: float32(*vortexQ)}
	}

	var engine compute.Engine
	if *vector {
		engine = compute.Vector{}
	} else {
		engine = compute.Parallel{NumWorkers: *workers}
	}

	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatal(err)
	}

	var srv *server.Server
	if *live {
		log.Printf("spinning up live solver (resolution %d)", *liveRes)
		lv, err := datasets.NewLive(datasets.Spec{
			NI: *liveGrid, NJ: *liveGrid, NK: *liveGrid / 2,
			NumSteps: *liveSteps, DT: float32(*liveDT),
		}, datasets.LiveOptions{
			Solver: datasets.SolverOptions{Resolution: *liveRes, Workers: *workers},
			Window: *liveWindow,
		})
		if err != nil {
			log.Fatal(err)
		}
		srv, err = core.ServeLive(ln, lv, core.Options{
			Engine:          engine,
			MaxSeedsPerRake: *maxSeeds,
			Budget:          *budget,
			MaxCodec:        *codec,
			Iso:             toolIso,
			Plane:           toolPlane,
			Vortex:          toolVortex,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving live solver on %s (engine %s, window %d, horizon %d)",
			ln.Addr(), engine.Name(), *liveWindow, *liveSteps)
	} else {
		disk, err := store.OpenDisk(*data, store.DiskOptions{BandwidthBytesPerSec: *diskBW << 20})
		if err != nil {
			log.Fatal(err)
		}
		var st store.Store = disk
		if *resident {
			log.Printf("loading %d timesteps into memory", disk.NumSteps())
			steps := make([]*field.Field, disk.NumSteps())
			for t := range steps {
				if steps[t], err = disk.LoadStep(t); err != nil {
					log.Fatal(err)
				}
			}
			u, err := field.NewUnsteady(disk.Grid(), steps, disk.DT())
			if err != nil {
				log.Fatal(err)
			}
			st = store.NewMemory(u)
		}
		srv, err = core.Serve(ln, st, core.Options{
			Engine:          engine,
			Prefetch:        !*resident && *prefetch,
			MaxSeedsPerRake: *maxSeeds,
			CacheSteps:      *cacheN,
			CacheBytes:      *cacheMB << 20,
			Budget:          *budget,
			MaxCodec:        *codec,
			Iso:             toolIso,
			Plane:           toolPlane,
			Vortex:          toolVortex,
		})
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("serving %d-step dataset on %s (engine %s, resident=%v)",
			st.NumSteps(), ln.Addr(), engine.Name(), *resident)
	}

	if *debug != "" {
		obs.Publish("vwserver.frames", srv.Recorder())
		// The cluster-tier counters: full round payloads vs cheap markers
		// answered to downstream vwrelay nodes.
		obs.PublishFunc("vwserver.relay", func() any {
			st := srv.Stats()
			return map[string]int64{
				"Fulls":   st.RelayFulls,
				"Markers": st.RelayMarkers,
				"Bytes":   st.RelayBytes,
			}
		})
		if _, ok := srv.CacheStats(); ok {
			obs.PublishFunc("vwserver.cache", func() any {
				cs, _ := srv.CacheStats()
				return cs
			})
		}
		if _, ok := srv.LiveStats(); ok {
			obs.PublishFunc("vwserver.live", func() any {
				rs, _ := srv.LiveStats()
				return map[string]int64{
					"Produced": rs.Produced,
					"Recycled": rs.Recycled,
					"Deferred": rs.Deferred,
					"Clamped":  rs.Clamped,
					"Steered":  int64(srv.Env().Steer().Version),
				}
			})
		}
		dbg, err := obs.ServeDebug(*debug)
		if err != nil {
			log.Fatal(err)
		}
		defer dbg.Close()
		log.Printf("debug endpoint on http://%s/debug/vars (pprof under /debug/pprof/)", dbg.Addr())
	}

	// Periodic stats until interrupted.
	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt)
	ticker := time.NewTicker(5 * time.Second)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			s := srv.Stats()
			if s.Frames == 0 {
				continue
			}
			log.Printf("frames=%d points=%d avg_compute=%v avg_load=%v shipped=%.1fMB sessions=%d shed=%d",
				s.Frames, s.Points,
				(s.ComputeTime / time.Duration(s.Frames)).Round(time.Microsecond),
				(s.LoadTime / time.Duration(s.Frames)).Round(time.Microsecond),
				float64(s.BytesShipped)/(1<<20),
				srv.Dlib().NumSessions(), s.FramesShed)
			log.Printf("  pipeline: %s", srv.Recorder().Snapshot())
			if cs, ok := srv.CacheStats(); ok {
				log.Printf("  cache: %s", cs)
			}
			if rs, ok := srv.LiveStats(); ok {
				st := srv.Env().Steer()
				log.Printf("  live: produced=%d recycled=%d deferred=%d clamped=%d steer=v%d(U=%.2f Re=%.0f taper=%.2f)",
					rs.Produced, rs.Recycled, rs.Deferred, rs.Clamped,
					st.Version, st.Params.InflowU, st.Params.Reynolds, st.Params.Taper)
			}
			for _, proc := range srv.Dlib().ProcNames() {
				ps := srv.Dlib().ProcStats()[proc]
				log.Printf("  %-12s calls=%d mean=%v max=%v out=%.1fMB errs=%d",
					proc, ps.Calls, ps.Mean().Round(time.Microsecond),
					ps.MaxService.Round(time.Microsecond),
					float64(ps.BytesOut)/(1<<20), ps.Errors)
			}
		case <-stop:
			log.Printf("shutting down")
			srv.Dlib().Close()
			return
		}
	}
}
