package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"

	"repro/internal/analysis"
)

// vetConfig mirrors the JSON the go command writes for each vet.cfg
// (see cmd/go/internal/work's vetConfig). Fields we don't need are
// omitted; unknown fields are ignored by encoding/json.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	GoVersion string

	SucceedOnTypecheckFailure bool
}

// runVetTool is the `go vet -vettool` entry point: one invocation per
// package, reading the typecheck universe from gc export data.
func runVetTool(cfgPath string, stderr io.Writer) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		return fail(stderr, err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return fail(stderr, fmt.Errorf("parsing %s: %w", cfgPath, err))
	}

	// The driver expects a facts file even though vwlint keeps no
	// cross-package facts; an empty one keeps the action graph happy.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, nil, 0o666); err != nil {
			return fail(stderr, err)
		}
	}
	if cfg.VetxOnly {
		return 0 // dependency run: facts only, no reporting
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		if !filepath.IsAbs(name) {
			name = filepath.Join(cfg.Dir, name)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			return fail(stderr, err)
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	lookup := func(path string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[path]; ok {
			path = mapped
		}
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	conf := types.Config{
		Importer:  importer.ForCompiler(fset, compiler, lookup),
		GoVersion: cfg.GoVersion,
	}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tpkg, err := conf.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		return fail(stderr, fmt.Errorf("typecheck %s: %w", cfg.ImportPath, err))
	}

	pkg := &analysis.Package{
		Fset:       fset,
		Files:      files,
		Pkg:        tpkg,
		Info:       info,
		Path:       cfg.ImportPath,
		Directives: analysis.ParseDirectives(fset, files),
	}
	diags := append([]analysis.Diagnostic(nil), pkg.Directives.Bad...)
	diags = append(diags, analysis.RunAll(analysis.All(), pkg)...)
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(stderr, d)
	}
	return 2 // the conventional vet "diagnostics reported" exit
}
