// Command vwlint runs the project's invariant analyzers (wallclock,
// lockdiscipline, hotpath, replyownership, maporder, pinownership,
// codecparity, hostilecount — see internal/analysis) over the repo.
// It has two faces:
//
// Standalone, the way `make lint` uses it:
//
//	go run ./cmd/vwlint ./...
//	go run ./cmd/vwlint ./internal/server
//	go run ./cmd/vwlint -json ./...
//	go run ./cmd/vwlint -stats ./...
//
// walks the module, typechecks every non-test package with the
// source importer, and prints findings as file:line:col: message
// [analyzer], exiting 1 if anything (including a malformed //vw:
// directive or a classified package that lost its //vw:deterministic
// or //vw:wire opt-in) survives the //vw:allow annotations. -json
// emits every finding — suppressed ones included, with an "allowed"
// flag — as a JSON array so CI tooling can diff lint results across
// PRs; -stats prints the //vw:allow count per analyzer.
//
// As a vet tool, for editor/CI integration on top of go vet's
// incremental action graph:
//
//	go vet -vettool=$(pwd)/bin/vwlint ./...
//
// where it speaks the -V=full / -flags / pkg.cfg protocol and reads
// the gc export data the go command hands it.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"

	"repro/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:], os.Stdout, os.Stderr)) }

func run(args []string, stdout, stderr io.Writer) int {
	// The go vet driver handshake: version identity, then flag
	// discovery, then one "vetFlags... pkg.cfg" invocation per
	// package.
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-V" {
			// Three fields with f[1]=="version"; the third names a
			// release so cmd/go can use the line as a cache key.
			fmt.Fprintln(stdout, "vwlint version v2")
			return 0
		}
	}
	for _, a := range args {
		if a == "-flags" {
			fmt.Fprintln(stdout, "[]") // no tool-specific flags
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runVetTool(args[n-1], stderr)
	}

	var jsonMode, statsMode bool
	var patterns []string
	for _, a := range args {
		switch a {
		case "-json", "--json":
			jsonMode = true
		case "-stats", "--stats":
			statsMode = true
		default:
			patterns = append(patterns, a)
		}
	}
	return runStandalone(patterns, jsonMode, statsMode, stdout, stderr)
}

// A jsonFinding is the machine-readable shape of one finding, for
// `vwlint -json`. Suppressed findings ship too, with Allowed=true, so
// tooling can diff the full lint surface (and the suppression debt)
// across PRs.
type jsonFinding struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
	Allowed  bool   `json:"allowed"`
}

// runStandalone loads packages from the module tree and reports.
func runStandalone(patterns []string, jsonMode, statsMode bool, stdout, stderr io.Writer) int {
	cwd, err := os.Getwd()
	if err != nil {
		return fail(stderr, err)
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		return fail(stderr, err)
	}
	dirs, err := selectDirs(root, cwd, patterns)
	if err != nil {
		return fail(stderr, err)
	}

	loader := analysis.NewLoader()
	analyzers := analysis.All()
	var findings []analysis.Finding
	var bad []analysis.Diagnostic
	classes := make(map[string]analysis.Class) // import path -> directive-derived class
	allowCounts := make(map[string]int)
	for _, rel := range dirs {
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(filepath.Join(root, rel), importPath)
		if err != nil {
			return fail(stderr, err)
		}
		if pkg == nil {
			continue
		}
		classes[importPath] = analysis.Classify(pkg.Directives)
		for name, n := range pkg.Directives.AllowCounts() {
			allowCounts[name] += n
		}
		bad = append(bad, pkg.Directives.Bad...)
		findings = append(findings, analysis.RunAllFindings(analyzers, pkg)...)
	}

	if statsMode {
		printStats(stdout, allowCounts)
		return 0
	}

	// The invariant nets must not rot: every package the registry
	// classifies keeps the matching //vw: directive in its source.
	exit := 0
	for _, p := range sortedKeys(analysis.PackageClasses) {
		want := analysis.PackageClasses[p]
		got, loaded := classes[p]
		if !loaded {
			continue
		}
		if want.Deterministic && !got.Deterministic {
			fmt.Fprintf(stderr, "vwlint: %s must carry //vw:deterministic (see internal/analysis.PackageClasses)\n", p)
			exit = 1
		}
		if want.WireFacing && !got.WireFacing {
			fmt.Fprintf(stderr, "vwlint: %s must carry //vw:wire (see internal/analysis.PackageClasses)\n", p)
			exit = 1
		}
	}

	if jsonMode {
		out := make([]jsonFinding, 0, len(findings)+len(bad))
		for _, d := range bad {
			out = append(out, jsonFinding{
				File: relPath(cwd, d.Position.Filename), Line: d.Position.Line, Col: d.Position.Column,
				Analyzer: d.Analyzer, Message: d.Message,
			})
		}
		for _, f := range findings {
			out = append(out, jsonFinding{
				File: relPath(cwd, f.Position.Filename), Line: f.Position.Line, Col: f.Position.Column,
				Analyzer: f.Analyzer, Message: f.Message, Allowed: f.Allowed,
			})
		}
		sort.Slice(out, func(i, j int) bool {
			a, b := out[i], out[j]
			if a.File != b.File {
				return a.File < b.File
			}
			if a.Line != b.Line {
				return a.Line < b.Line
			}
			return a.Col < b.Col
		})
		enc := json.NewEncoder(stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			return fail(stderr, err)
		}
		for _, f := range out {
			if !f.Allowed {
				exit = 1
			}
		}
		return exit
	}

	for _, d := range bad {
		fmt.Fprintln(stderr, relPosition(cwd, d))
		exit = 1
	}
	for _, f := range findings {
		if f.Allowed {
			continue
		}
		fmt.Fprintln(stderr, relPosition(cwd, f.Diagnostic))
		exit = 1
	}
	return exit
}

// printStats renders the //vw:allow debt per analyzer, every known
// analyzer listed even at zero so trends are diffable.
func printStats(w io.Writer, counts map[string]int) {
	total := 0
	for _, a := range analysis.All() {
		fmt.Fprintf(w, "%-16s %d\n", a.Name, counts[a.Name])
		total += counts[a.Name]
	}
	fmt.Fprintf(w, "%-16s %d\n", "total", total)
}

func sortedKeys(m map[string]analysis.Class) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// selectDirs maps package patterns onto module-relative directories.
// Supported: "./..." (everything), "dir/..." (subtree), and plain
// directories.
func selectDirs(root, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := analysis.PackageDirs(root)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		base, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(base, "..") {
			return nil, fmt.Errorf("vwlint: pattern %q is outside the module", pat)
		}
		for _, rel := range all {
			switch {
			case rel == base:
				add(rel)
			case recursive && (base == "." || strings.HasPrefix(rel, base+string(filepath.Separator))):
				add(rel)
			}
		}
	}
	return out, nil
}

func relPath(cwd, name string) string {
	if rel, err := filepath.Rel(cwd, name); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return name
}

func relPosition(cwd string, d analysis.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(cwd, d.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = rel + strings.TrimPrefix(s, d.Position.Filename)
	}
	return s
}

func fail(stderr io.Writer, err error) int {
	fmt.Fprintln(stderr, "vwlint:", err)
	return 1
}
