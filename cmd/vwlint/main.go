// Command vwlint runs the project's invariant analyzers (wallclock,
// lockdiscipline, hotpath, replyownership — see internal/analysis)
// over the repo. It has two faces:
//
// Standalone, the way `make lint` uses it:
//
//	go run ./cmd/vwlint ./...
//	go run ./cmd/vwlint ./internal/server
//
// walks the module, typechecks every non-test package with the
// source importer, and prints findings as file:line:col: message
// [analyzer], exiting 1 if anything (including a malformed //vw:
// directive or a deterministic package that lost its
// //vw:deterministic opt-in) survives the //vw:allow annotations.
//
// As a vet tool, for editor/CI integration on top of go vet's
// incremental action graph:
//
//	go vet -vettool=$(pwd)/bin/vwlint ./...
//
// where it speaks the -V=full / -flags / pkg.cfg protocol and reads
// the gc export data the go command hands it.
package main

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"repro/internal/analysis"
)

func main() { os.Exit(run(os.Args[1:])) }

func run(args []string) int {
	// The go vet driver handshake: version identity, then flag
	// discovery, then one "vetFlags... pkg.cfg" invocation per
	// package.
	for _, a := range args {
		if strings.HasPrefix(a, "-V=") || a == "-V" {
			// Three fields with f[1]=="version"; the third names a
			// release so cmd/go can use the line as a cache key.
			fmt.Println("vwlint version v1")
			return 0
		}
	}
	for _, a := range args {
		if a == "-flags" {
			fmt.Println("[]") // no tool-specific flags
			return 0
		}
	}
	if n := len(args); n > 0 && strings.HasSuffix(args[n-1], ".cfg") {
		return runVetTool(args[n-1])
	}
	return runStandalone(args)
}

// runStandalone loads packages from the module tree and reports.
func runStandalone(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		return fail(err)
	}
	root, modPath, err := analysis.ModuleRoot(cwd)
	if err != nil {
		return fail(err)
	}
	dirs, err := selectDirs(root, cwd, patterns)
	if err != nil {
		return fail(err)
	}

	loader := analysis.NewLoader()
	analyzers := analysis.All()
	var diags []analysis.Diagnostic
	deterministic := make(map[string]bool) // import path -> has directive
	for _, rel := range dirs {
		importPath := modPath
		if rel != "." {
			importPath = modPath + "/" + filepath.ToSlash(rel)
		}
		pkg, err := loader.LoadDir(filepath.Join(root, rel), importPath)
		if err != nil {
			return fail(err)
		}
		if pkg == nil {
			continue
		}
		deterministic[importPath] = pkg.Directives.Deterministic
		diags = append(diags, pkg.Directives.Bad...)
		diags = append(diags, analysis.RunAll(analyzers, pkg)...)
	}

	// The determinism net must not rot: every package on the list
	// keeps its //vw:deterministic opt-in.
	exit := 0
	for _, p := range analysis.DeterministicPackages {
		has, loaded := deterministic[p]
		if loaded && !has {
			fmt.Fprintf(os.Stderr, "vwlint: %s must carry //vw:deterministic (see internal/analysis.DeterministicPackages)\n", p)
			exit = 1
		}
	}

	for _, d := range diags {
		fmt.Fprintln(os.Stderr, relPosition(cwd, d))
		exit = 1
	}
	return exit
}

// selectDirs maps package patterns onto module-relative directories.
// Supported: "./..." (everything), "dir/..." (subtree), and plain
// directories.
func selectDirs(root, cwd string, patterns []string) ([]string, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	all, err := analysis.PackageDirs(root)
	if err != nil {
		return nil, err
	}
	var out []string
	seen := make(map[string]bool)
	add := func(rel string) {
		if !seen[rel] {
			seen[rel] = true
			out = append(out, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
			if pat == "." || pat == "" {
				pat = "."
			}
		}
		abs := pat
		if !filepath.IsAbs(abs) {
			abs = filepath.Join(cwd, pat)
		}
		base, err := filepath.Rel(root, abs)
		if err != nil || strings.HasPrefix(base, "..") {
			return nil, fmt.Errorf("vwlint: pattern %q is outside the module", pat)
		}
		for _, rel := range all {
			switch {
			case rel == base:
				add(rel)
			case recursive && (base == "." || strings.HasPrefix(rel, base+string(filepath.Separator))):
				add(rel)
			}
		}
	}
	return out, nil
}

func relPosition(cwd string, d analysis.Diagnostic) string {
	s := d.String()
	if rel, err := filepath.Rel(cwd, d.Position.Filename); err == nil && !strings.HasPrefix(rel, "..") {
		s = rel + strings.TrimPrefix(s, d.Position.Filename)
	}
	return s
}

func fail(err error) int {
	fmt.Fprintln(os.Stderr, "vwlint:", err)
	return 1
}
