package main

import (
	"bytes"
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// writeModule lays out a throwaway Go module for the driver to lint.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o777); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o666); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// chdir moves the process into dir for the duration of the test;
// runStandalone resolves the module root from the working directory.
func chdir(t *testing.T, dir string) {
	t.Helper()
	old, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Chdir(dir); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { os.Chdir(old) })
}

const hostileModSrc = `// Package hostile exercises hostilecount through the drivers.
//
//vw:wire
package hostile

import "encoding/binary"

func Bad(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return make([]byte, n)
}

func Allowed(buf []byte) []byte {
	n := binary.LittleEndian.Uint32(buf)
	return make([]byte, n) //vw:allow hostilecount -- test: trusted in-process peer
}
`

func TestRunJSON(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"go.mod":             "module tmpmod\n\ngo 1.22\n",
		"hostile/hostile.go": hostileModSrc,
	})
	chdir(t, mod)

	var out, errBuf bytes.Buffer
	code := run([]string{"-json", "./..."}, &out, &errBuf)
	if code != 1 {
		t.Fatalf("exit = %d, want 1 (one unsuppressed finding); stderr: %s", code, errBuf.String())
	}
	var findings []jsonFinding
	if err := json.Unmarshal(out.Bytes(), &findings); err != nil {
		t.Fatalf("output is not a JSON array: %v\n%s", err, out.String())
	}
	if len(findings) != 2 {
		t.Fatalf("findings = %d, want 2 (flagged + allowed): %+v", len(findings), findings)
	}
	var allowed, flagged int
	for _, f := range findings {
		if f.Analyzer != "hostilecount" {
			t.Errorf("analyzer = %q, want hostilecount", f.Analyzer)
		}
		if f.File != filepath.Join("hostile", "hostile.go") {
			t.Errorf("file = %q, want module-relative hostile/hostile.go", f.File)
		}
		if f.Line == 0 || f.Col == 0 {
			t.Errorf("finding missing position: %+v", f)
		}
		if !strings.Contains(f.Message, "wire-decoded count") {
			t.Errorf("message = %q, want the hostilecount wording", f.Message)
		}
		if f.Allowed {
			allowed++
		} else {
			flagged++
		}
	}
	if allowed != 1 || flagged != 1 {
		t.Errorf("allowed/flagged = %d/%d, want 1/1 — -json must ship suppressed findings too", allowed, flagged)
	}
}

func TestRunStats(t *testing.T) {
	mod := writeModule(t, map[string]string{
		"go.mod":             "module tmpmod\n\ngo 1.22\n",
		"hostile/hostile.go": hostileModSrc,
	})
	chdir(t, mod)

	var out, errBuf bytes.Buffer
	code := run([]string{"-stats", "./..."}, &out, &errBuf)
	if code != 0 {
		t.Fatalf("exit = %d, want 0 (stats never fails the build); stderr: %s", code, errBuf.String())
	}
	got := out.String()
	// Every analyzer is listed even at zero so trends diff cleanly.
	for _, name := range []string{
		"wallclock", "lockdiscipline", "hotpath", "replyownership",
		"maporder", "pinownership", "codecparity", "hostilecount", "total",
	} {
		if !strings.Contains(got, name) {
			t.Errorf("stats output missing %q:\n%s", name, got)
		}
	}
	for _, line := range strings.Split(strings.TrimSpace(got), "\n") {
		f := strings.Fields(line)
		if len(f) != 2 {
			t.Fatalf("stats line %q not `name count`", line)
		}
		switch f[0] {
		case "hostilecount", "total":
			if f[1] != "1" {
				t.Errorf("%s = %s, want 1", f[0], f[1])
			}
		default:
			if f[1] != "0" {
				t.Errorf("%s = %s, want 0", f[0], f[1])
			}
		}
	}
}

func TestRunVersionHandshake(t *testing.T) {
	var out, errBuf bytes.Buffer
	if code := run([]string{"-V=full"}, &out, &errBuf); code != 0 {
		t.Fatalf("-V=full exit = %d, want 0", code)
	}
	f := strings.Fields(out.String())
	if len(f) != 3 || f[1] != "version" {
		t.Fatalf("-V=full output %q: cmd/go requires three fields with f[1]==version", out.String())
	}
}

// vetProbeSrc trips all four second-generation analyzers once each and
// suppresses a second maporder site, so one module proves both that
// findings flow through a driver and that //vw:allow survives the trip.
const vetProbeSrc = `// Package probe exercises the v2 analyzers end to end.
//
//vw:deterministic
//vw:wire
package probe

import "encoding/binary"

func Names(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func NamesAllowed(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k) //vw:allow maporder -- test: order scrambled downstream
	}
	return out
}

type Ring struct{}

func (r *Ring) Pin(step uint64)          {}
func (r *Ring) Unpin(step uint64)        {}
func (r *Ring) LoadStep(step uint64) int { return 0 }

func Leak(r *Ring) {
	r.Pin(7)
}

type Blip struct{ A uint32 }

func EncodeBlip(dst []byte, b Blip) []byte {
	return binary.LittleEndian.AppendUint32(dst, b.A)
}

func Grow(buf []byte) []byte {
	n, _ := binary.Uvarint(buf)
	return make([]byte, n)
}
`

// TestDriversRoundTrip builds the real binary and runs the same module
// through both faces — `go vet -vettool` and standalone — asserting
// each of the four new analyzers reports and the //vw:allow suppresses
// in both.
func TestDriversRoundTrip(t *testing.T) {
	goTool, err := exec.LookPath("go")
	if err != nil {
		t.Skipf("go tool not on PATH: %v", err)
	}
	bin := filepath.Join(t.TempDir(), "vwlint")
	if out, err := exec.Command(goTool, "build", "-o", bin, ".").CombinedOutput(); err != nil {
		t.Fatalf("building vwlint: %v\n%s", err, out)
	}
	mod := writeModule(t, map[string]string{
		"go.mod":         "module tmpmod\n\ngo 1.22\n",
		"probe/probe.go": vetProbeSrc,
	})

	check := func(t *testing.T, stderr string) {
		t.Helper()
		for _, tag := range []string{"[maporder]", "[pinownership]", "[codecparity]", "[hostilecount]"} {
			if n := strings.Count(stderr, tag); n != 1 {
				t.Errorf("%s findings = %d, want exactly 1 (the //vw:allow site must be suppressed):\n%s", tag, n, stderr)
			}
		}
	}

	t.Run("vet", func(t *testing.T) {
		cmd := exec.Command(goTool, "vet", "-vettool="+bin, "./...")
		cmd.Dir = mod
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet -vettool succeeded, want findings:\n%s", out)
		}
		check(t, string(out))
	})

	t.Run("standalone", func(t *testing.T) {
		cmd := exec.Command(bin, "./...")
		cmd.Dir = mod
		var stdout, stderr bytes.Buffer
		cmd.Stdout, cmd.Stderr = &stdout, &stderr
		err := cmd.Run()
		ee, ok := err.(*exec.ExitError)
		if !ok || ee.ExitCode() != 1 {
			t.Fatalf("standalone exit = %v, want 1; stderr:\n%s", err, stderr.String())
		}
		check(t, stderr.String())
	})
}
