// Command vwclient is a headless workstation: it connects to a
// vwserver, drives a scripted user through the virtual environment
// (head motion, rake grabs via glove gestures), and reports the
// frame-budget statistics of §1.2. Optionally it dumps anaglyph stereo
// frames as PPM images.
//
// Usage:
//
//	vwclient -addr 127.0.0.1:9040 -frames 100 -rake -dump frames/
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"path/filepath"
	"time"

	"repro/internal/client"
	"repro/internal/core"
	"repro/internal/integrate"
	"repro/internal/netsim"
	"repro/internal/vmath"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("vwclient: ")

	var (
		addr   = flag.String("addr", "127.0.0.1:9040", "server address")
		frames = flag.Int("frames", 50, "number of interaction frames to run")
		rake   = flag.Bool("rake", true, "create a streamline rake in the wake")
		smoke  = flag.Bool("smoke", false, "create a streakline (smoke) rake too")
		play   = flag.Float64("play", 1, "playback speed in timesteps/frame (0 = paused)")
		dump   = flag.String("dump", "", "directory to write every 10th frame as PPM")
		bwMBs  = flag.Int64("bw", 0, "simulate a link of this many MB/s (0 = none)")
		script = flag.String("script", "", "console command script to run before the frames (see internal/client.ParseScript)")
		codec  = flag.Int("codec", 2, "frame codec to request: 1 = classic full frames, 2 = delta/quantized (falls back to 1 against old servers)")
	)
	flag.Parse()
	if *codec < 1 || *codec > 2 {
		log.Fatalf("-codec %d: must be 1 or 2", *codec)
	}
	opts := core.Options{Codec: uint8(*codec)}

	var sess *core.Session
	var err error
	if *bwMBs > 0 {
		raw, derr := net.Dial("tcp", *addr)
		if derr != nil {
			log.Fatal(derr)
		}
		link := netsim.Link{BandwidthBytesPerSec: *bwMBs << 20}.Wrap(raw)
		sess, err = core.Connect("", link, opts)
	} else {
		sess, err = core.Connect(*addr, nil, opts)
	}
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	info := sess.WS.Info()
	log.Printf("dataset: %dx%dx%d grid, %d timesteps, bounds %v..%v (codec v%d)",
		info.NI, info.NJ, info.NK, info.NumSteps, info.BoundsMin, info.BoundsMax,
		sess.WS.Codec())

	if *script != "" {
		f, err := os.Open(*script)
		if err != nil {
			log.Fatal(err)
		}
		cmds, err := client.ParseScript(f)
		f.Close()
		if err != nil {
			log.Fatal(err)
		}
		for _, c := range cmds {
			sess.WS.Queue(c)
		}
		log.Printf("queued %d script commands from %s", len(cmds), *script)
	}
	if *rake {
		sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 10, integrate.ToolStreamline)
	}
	if *smoke {
		sess.AddRake(vmath.V3(-2, -0.8, 2), vmath.V3(-2, -0.8, 12), 6, integrate.ToolStreakline)
	}
	if *play != 0 {
		sess.Play(float32(*play))
	}

	results := make([]core.FrameResult, 0, *frames)
	for i := 0; i < *frames; i++ {
		r, err := sess.Frame()
		if err != nil {
			log.Fatal(err)
		}
		results = append(results, r)
		if *dump != "" && i%10 == 0 {
			if err := dumpFrame(sess, *dump, i); err != nil {
				log.Fatal(err)
			}
		}
		if (i+1)%25 == 0 {
			log.Printf("frame %d: %v, %d points", i+1, r.Total.Round(time.Microsecond), r.Points)
		}
	}
	stats := sess.WS.Stats()
	fmt.Println(core.Summarize(results))
	fmt.Printf("downstream: %.2f MB over %d net frames\n",
		float64(stats.BytesDown)/(1<<20), stats.NetFrames)
	if stats.ToolFrames > 0 {
		fmt.Printf("shared tools: %d frames carried a tool section, %d tool points in the last\n",
			stats.ToolFrames, stats.LastToolPoints)
	}
}

func dumpFrame(sess *core.Session, dir string, i int) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	path := filepath.Join(dir, fmt.Sprintf("frame_%04d.ppm", i))
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	return sess.WS.Framebuffer().WritePPM(f)
}
