// Package repro's root benchmarks map one-to-one onto the paper's
// evaluation: one benchmark per table and figure, plus the ablations
// DESIGN.md calls out. Run with
//
//	go test -bench=. -benchmem
//
// cmd/vwbench prints the same experiments as human-readable tables.
package repro

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/compute"
	"repro/internal/core"
	"repro/internal/datasets"
	"repro/internal/dlib"
	"repro/internal/field"
	"repro/internal/grid"
	"repro/internal/integrate"
	"repro/internal/isosurf"
	"repro/internal/netsim"
	"repro/internal/relay"
	"repro/internal/store"
	"repro/internal/vmath"
	"repro/internal/wire"
)

// sharedDataset lazily builds one synthetic tapered-cylinder dataset
// for all benchmarks.
var (
	datasetOnce sync.Once
	dataset     *field.Unsteady
	datasetErr  error
)

func benchDataset(b *testing.B) *field.Unsteady {
	b.Helper()
	datasetOnce.Do(func() {
		dataset, datasetErr = bench.BuildDataset(bench.DatasetSpec{
			NI: 24, NJ: 32, NK: 10, NumSteps: 10, DT: 0.6,
		})
	})
	if datasetErr != nil {
		b.Fatal(datasetErr)
	}
	return dataset
}

// BenchmarkTable1NetworkTransfer measures Table 1's core operation:
// shipping a 10,000-particle frame (120,000 bytes at 12 bytes/point)
// from server to workstation over the 13 MB/s UltraNet-VME link. At
// 10 fps the budget is 100 ms/op; the paper's table says this link
// sustains it.
func BenchmarkTable1NetworkTransfer(b *testing.B) {
	payload := wire.EncodePoints(nil, make([]vmath.Vec3, 10000))
	srv := dlib.NewServer()
	srv.Register("points", func(*dlib.Ctx, []byte) ([]byte, error) { return payload, nil })
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	defer srv.Close()
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		srv.ServeConn(netsim.Link{BandwidthBytesPerSec: netsim.UltraNetVME}.Wrap(conn))
	}()
	c, err := dlib.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	if _, err := c.Call("points", nil); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(payload)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("points", nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2DiskLoad measures Table 2's core operation: loading
// one tapered-cylinder timestep (1,572,864 bytes) through a disk
// throttled to the Convex's measured 30 MB/s. Table 2 says this costs
// 1/20th of a second, so a 10 fps playback needs 15 MB/s sustained.
func BenchmarkTable2DiskLoad(b *testing.B) {
	dir := b.TempDir()
	u, err := bench.BuildDataset(bench.DatasetSpec{NI: 64, NJ: 64, NK: 32, NumSteps: 2, DT: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	if u.Steps[0].SizeBytes() != 1572864 {
		b.Fatalf("timestep size %d, want the paper's 1572864", u.Steps[0].SizeBytes())
	}
	if err := store.WriteDataset(dir, u); err != nil {
		b.Fatal(err)
	}
	disk, err := store.OpenDisk(dir, store.DiskOptions{BandwidthBytesPerSec: 30 << 20})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(u.Steps[0].SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := disk.LoadStep(i % 2); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable3Engines runs the §5.3 benchmark (100 streamlines x
// 200 points) on each engine configuration; Table 3 derives maximum
// particle counts from exactly these times.
func BenchmarkTable3Engines(b *testing.B) {
	w, err := compute.BenchmarkWorkload()
	if err != nil {
		b.Fatal(err)
	}
	engines := []compute.Engine{
		compute.Scalar{},
		compute.Parallel{NumWorkers: 4},
		compute.Vector{},
		compute.Parallel{NumWorkers: 8},
	}
	for _, e := range engines {
		b.Run(e.Name(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				paths, _ := e.Streamlines(w.Sampler, w.Seeds, w.Time, w.Options)
				if len(paths) != compute.BenchStreamlines {
					b.Fatal("wrong path count")
				}
			}
		})
	}
}

// BenchmarkFigure1Streaklines measures one frame of figure 1's
// workload: advancing the smoke (streakline particles) one step and
// injecting at the rake.
func BenchmarkFigure1Streaklines(b *testing.B) {
	u := benchDataset(b)
	rake, err := integrate.NewRake(1, vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 10,
		integrate.ToolStreakline)
	if err != nil {
		b.Fatal(err)
	}
	seeds := rake.SeedsGrid(u.Grid)
	streak := integrate.NewStreak(40000)
	sampler := compute.SteadyBatch{F: u.Steps[0], G: u.Grid}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		streak.Advance(sampler, seeds, float32(i%u.NumSteps()), 0.5, integrate.RK2)
	}
}

// BenchmarkFigure23Streamlines measures the streamline set behind
// figures 2 and 3: a 12-seed rake integrated 300 steps through the
// instantaneous field.
func BenchmarkFigure23Streamlines(b *testing.B) {
	u := benchDataset(b)
	rake, err := integrate.NewRake(1, vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 12,
		integrate.ToolStreamline)
	if err != nil {
		b.Fatal(err)
	}
	seeds := rake.SeedsGrid(u.Grid)
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.4, MaxSteps: 300, MinSpeed: 1e-7}
	sampler := compute.SteadyBatch{F: u.Steps[0], G: u.Grid}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		paths, _ := compute.Vector{}.Streamlines(sampler, seeds, 0, o)
		if len(paths) == 0 {
			b.Fatal("no paths")
		}
	}
}

// BenchmarkFig8Pipeline measures one playback frame against a
// throttled disk, with and without the prefetch overlap of figure 8.
func BenchmarkFig8Pipeline(b *testing.B) {
	u := benchDataset(b)
	dir := b.TempDir()
	if err := store.WriteDataset(dir, u); err != nil {
		b.Fatal(err)
	}
	for _, prefetch := range []bool{false, true} {
		name := "synchronous"
		if prefetch {
			name = "prefetch"
		}
		b.Run(name, func(b *testing.B) {
			disk, err := store.OpenDisk(dir, store.DiskOptions{BandwidthBytesPerSec: 30 << 20})
			if err != nil {
				b.Fatal(err)
			}
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv, err := core.Serve(ln, disk, core.Options{Prefetch: prefetch})
			if err != nil {
				b.Fatal(err)
			}
			defer srv.Dlib().Close()
			sess, err := core.Connect(ln.Addr().String(), nil, core.Options{FrameW: 64, FrameH: 64})
			if err != nil {
				b.Fatal(err)
			}
			defer sess.Close()
			sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 150, integrate.ToolStreamline)
			sess.Play(1)
			if _, err := sess.Frame(); err != nil {
				b.Fatal(err)
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := sess.Frame(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig9ClientLoops measures the workstation's two loops
// separately: the full network frame and the local head-tracked
// stereo render that figure 9 decouples from it.
func BenchmarkFig9ClientLoops(b *testing.B) {
	u := benchDataset(b)
	sess, err := core.LaunchLocal(u, core.Options{FrameW: 320, FrameH: 256})
	if err != nil {
		b.Fatal(err)
	}
	defer sess.Close()
	sess.AddRake(vmath.V3(-3, 0.6, 1), vmath.V3(-3, 0.6, 14), 10, integrate.ToolStreamline)
	sess.Play(1)
	if _, err := sess.Frame(); err != nil {
		b.Fatal(err)
	}
	b.Run("network-frame", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := sess.WS.NetStep(sess.User.Step()); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("render-frame", func(b *testing.B) {
		head := sess.User.Boom.HeadMatrix()
		for i := 0; i < b.N; i++ {
			if err := sess.WS.RenderFrame(head); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig67DlibIO measures figure 6/7's effective data path: one
// timestep fetched from a remote disk through dlib.
func BenchmarkFig67DlibIO(b *testing.B) {
	u := benchDataset(b)
	dir := b.TempDir()
	if err := store.WriteDataset(dir, u); err != nil {
		b.Fatal(err)
	}
	disk, err := store.OpenDisk(dir, store.DiskOptions{})
	if err != nil {
		b.Fatal(err)
	}
	srv := dlib.NewServer()
	srv.Register("io.loadstep", func(*dlib.Ctx, []byte) ([]byte, error) {
		f, err := disk.LoadStep(0)
		if err != nil {
			return nil, err
		}
		out := make([]byte, 0, f.SizeBytes())
		for _, comp := range [][]float32{f.U, f.V, f.W} {
			out = wireFloats(out, comp)
		}
		return out, nil
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer srv.Close()
	c, err := dlib.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()
	b.SetBytes(u.Steps[0].SizeBytes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call("io.loadstep", nil); err != nil {
			b.Fatal(err)
		}
	}
}

func wireFloats(dst []byte, a []float32) []byte {
	pts := make([]vmath.Vec3, 0, (len(a)+2)/3)
	for i := 0; i+2 < len(a); i += 3 {
		pts = append(pts, vmath.Vec3{X: a[i], Y: a[i+1], Z: a[i+2]})
	}
	return wire.EncodePoints(dst, pts)
}

// BenchmarkServerMultiRakeFrame measures one server frame round with 8
// streamline rakes resident: "steady" leaves every rake untouched
// frame after frame (the examination regime — playback paused, user
// looking), "move-one" drags a single rake while the other 7 stay
// still (the interaction regime). Run with -benchmem: steady-state
// frames should do near-zero allocation once the server memoizes
// unchanged rakes and reuses its encode buffers.
func BenchmarkServerMultiRakeFrame(b *testing.B) {
	u := benchDataset(b)
	setup := func(b *testing.B) (*dlib.Client, []int32) {
		b.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv, err := core.Serve(ln, store.NewMemory(u), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Dlib().Close() })
		c, err := dlib.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		var cmds []wire.Command
		for i := 0; i < 8; i++ {
			y := 0.3 + 0.08*float32(i)
			cmds = append(cmds, wire.Command{
				Kind: wire.CmdAddRake,
				P0:   vmath.V3(-3, y, 1), P1: vmath.V3(-3, y, 14),
				NumSeeds: 32, Tool: uint8(integrate.ToolStreamline),
			})
		}
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{Commands: cmds}))
		if err != nil {
			b.Fatal(err)
		}
		r, err := wire.DecodeFrameReply(out)
		if err != nil {
			b.Fatal(err)
		}
		if len(r.Rakes) != 8 || len(r.Geometry) != 8 {
			b.Fatalf("setup: %d rakes, %d geometry", len(r.Rakes), len(r.Geometry))
		}
		ids := make([]int32, len(r.Rakes))
		for i, rk := range r.Rakes {
			ids[i] = rk.ID
		}
		return c, ids
	}

	b.Run("steady", func(b *testing.B) {
		c, _ := setup(b)
		empty := wire.EncodeClientUpdate(wire.ClientUpdate{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(wire.ProcFrame, empty); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("move-one", func(b *testing.B) {
		c, ids := setup(b)
		if _, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
			Commands: []wire.Command{{
				Kind: wire.CmdGrab, Rake: ids[0], Grab: uint8(integrate.GrabCenter),
			}},
		})); err != nil {
			b.Fatal(err)
		}
		moves := [2][]byte{
			wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{{
				Kind: wire.CmdMove, Rake: ids[0], Pos: vmath.V3(-3, 0.31, 7.5),
			}}}),
			wire.EncodeClientUpdate(wire.ClientUpdate{Commands: []wire.Command{{
				Kind: wire.CmdMove, Rake: ids[0], Pos: vmath.V3(-3, 0.29, 7.5),
			}}}),
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(wire.ProcFrame, moves[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkServerFanoutFrame measures the encode-once fan-out across a
// fleet: one op is one round — the lead session moves its hand (forcing
// a fresh encode) and the rest of the fleet joins the round, each
// receiving the shared ref-counted buffer. ns/op therefore scales with
// the fleet while the reported encodes/op stays ~1 regardless of
// session count — the scale-out claim in miniature.
func BenchmarkServerFanoutFrame(b *testing.B) {
	u := benchDataset(b)
	for _, sessions := range []int{1, 8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv, err := core.Serve(ln, store.NewMemory(u), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Dlib().Close() })
			clients := make([]*dlib.Client, sessions)
			for i := range clients {
				c, err := dlib.Dial(ln.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { c.Close() })
				clients[i] = c
			}
			if _, err := clients[0].Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
				Commands: []wire.Command{{
					Kind: wire.CmdAddRake,
					P0:   vmath.V3(-3, 0.4, 1), P1: vmath.V3(-3, 0.4, 14),
					NumSeeds: 16, Tool: uint8(integrate.ToolStreamline),
				}},
			})); err != nil {
				b.Fatal(err)
			}
			moves := [2][]byte{
				wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(0, 0.1, 0)}),
				wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(0, 0.2, 0)}),
			}
			follow := wire.EncodeClientUpdate(wire.ClientUpdate{})
			encBefore := srv.Stats().FramesEncoded
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k, c := range clients {
					payload := follow
					if k == 0 {
						payload = moves[i%2]
					}
					if _, err := c.Call(wire.ProcFrame, payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			encodes := srv.Stats().FramesEncoded - encBefore
			b.ReportMetric(float64(encodes)/float64(b.N), "encodes/op")
			b.ReportMetric(float64(sessions), "ships/op")
		})
	}
}

// BenchmarkRelayFanoutFrame measures the cluster tier's steady-state
// exchange: sessions workstations attached through one relay/cache
// node, one of them moving its hand each op so every round re-encodes
// at the origin. The relay fetches each round's bytes upstream once
// (fulls/op ~ 1) and re-fans them locally — encodes/op stays ~1 while
// ships scale with the session count, now without the origin seeing
// per-workstation traffic.
func BenchmarkRelayFanoutFrame(b *testing.B) {
	u := benchDataset(b)
	for _, sessions := range []int{8, 64} {
		b.Run(fmt.Sprintf("sessions=%d", sessions), func(b *testing.B) {
			oln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv, err := core.Serve(oln, store.NewMemory(u), core.Options{})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Dlib().Close() })
			origin := oln.Addr().String()
			r, err := relay.New(relay.Config{Upstreams: []dlib.DialFunc{
				func() (net.Conn, error) { return net.Dial("tcp", origin) },
			}})
			if err != nil {
				b.Fatal(err)
			}
			rln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			go r.Dlib().Serve(rln)
			b.Cleanup(func() {
				r.Dlib().Close()
				r.Close()
			})
			clients := make([]*dlib.Client, sessions)
			for i := range clients {
				c, err := dlib.Dial(rln.Addr().String())
				if err != nil {
					b.Fatal(err)
				}
				b.Cleanup(func() { c.Close() })
				clients[i] = c
			}
			if _, err := clients[0].Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
				Commands: []wire.Command{{
					Kind: wire.CmdAddRake,
					P0:   vmath.V3(-3, 0.4, 1), P1: vmath.V3(-3, 0.4, 14),
					NumSeeds: 16, Tool: uint8(integrate.ToolStreamline),
				}},
			})); err != nil {
				b.Fatal(err)
			}
			moves := [2][]byte{
				wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(0, 0.1, 0)}),
				wire.EncodeClientUpdate(wire.ClientUpdate{Hand: vmath.V3(0, 0.2, 0)}),
			}
			follow := wire.EncodeClientUpdate(wire.ClientUpdate{})
			encBefore := srv.Stats().FramesEncoded
			fullsBefore := r.Stats().UpFulls
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				for k, c := range clients {
					payload := follow
					if k == 0 {
						payload = moves[i%2]
					}
					if _, err := c.Call(wire.ProcFrame, payload); err != nil {
						b.Fatal(err)
					}
				}
			}
			b.StopTimer()
			encodes := srv.Stats().FramesEncoded - encBefore
			fulls := r.Stats().UpFulls - fullsBefore
			b.ReportMetric(float64(encodes)/float64(b.N), "encodes/op")
			b.ReportMetric(float64(fulls)/float64(b.N), "fulls/op")
			b.ReportMetric(float64(sessions), "ships/op")
		})
	}
}

// BenchmarkGovernedOverloadFrame measures the frame-budget governor on
// a deliberately overloaded scene: looping playback dirties six wide
// rakes every round, so each op recomputes the whole scene. Ungoverned,
// ns/op is whatever the integration costs; governed, the shed planner
// clamps the round to the budget once the first ops calibrate its
// ns/unit rate, and shed/op reports the fraction of rounds shipped
// degraded.
func BenchmarkGovernedOverloadFrame(b *testing.B) {
	u := benchDataset(b)
	for _, tc := range []struct {
		name   string
		budget time.Duration
	}{
		{"ungoverned", 0},
		{"budget=10ms", 10 * time.Millisecond},
		{"budget=5ms", 5 * time.Millisecond},
	} {
		b.Run(tc.name, func(b *testing.B) {
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				b.Fatal(err)
			}
			srv, err := core.Serve(ln, store.NewMemory(u), core.Options{Budget: tc.budget})
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { srv.Dlib().Close() })
			c, err := dlib.Dial(ln.Addr().String())
			if err != nil {
				b.Fatal(err)
			}
			b.Cleanup(func() { c.Close() })
			cmds := []wire.Command{
				{Kind: wire.CmdSetLoop, Flag: 1},
				{Kind: wire.CmdSetSpeed, Value: 1},
				{Kind: wire.CmdSetPlaying, Flag: 1},
			}
			for i := 0; i < 6; i++ {
				y := 0.3 + 0.08*float32(i)
				cmds = append(cmds, wire.Command{
					Kind: wire.CmdAddRake,
					P0:   vmath.V3(-3, y, 1), P1: vmath.V3(-3, y, 14),
					NumSeeds: 256, Tool: uint8(integrate.ToolStreamline),
				})
			}
			if _, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{Commands: cmds})); err != nil {
				b.Fatal(err)
			}
			empty := wire.EncodeClientUpdate(wire.ClientUpdate{})
			shedBefore := srv.Stats().FramesShed
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := c.Call(wire.ProcFrame, empty); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			shed := srv.Stats().FramesShed - shedBefore
			b.ReportMetric(float64(shed)/float64(b.N), "shed/op")
		})
	}
}

// BenchmarkLiveProducerFrame measures one frame of in-situ mode: the
// workstation's frame round while the coupled solver produces the
// timestep it lands on — solver sub-steps, ring publish, tracer
// integration, and encode all inside the op. The scene mixes a
// streamline rake (recomputed every round under playback) with a
// streakline rake (the history consumer the ring's window exists
// for). produced/op ~ 1 confirms each round really sealed a fresh
// step rather than replaying the ring.
func BenchmarkLiveProducerFrame(b *testing.B) {
	lv, err := datasets.NewLive(
		datasets.Spec{NI: 12, NJ: 12, NK: 6, NumSteps: 1 << 20, DT: 0.2},
		datasets.LiveOptions{
			Solver: datasets.SolverOptions{Resolution: 16, SpinupSteps: 6, Workers: 2},
			Window: 8,
		})
	if err != nil {
		b.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	srv, err := core.ServeLive(ln, lv, core.Options{})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { srv.Dlib().Close() })
	c, err := dlib.Dial(ln.Addr().String())
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close() })
	bb := lv.Grid().Bounds()
	at := func(fx, fy, fz float32) vmath.Vec3 {
		return bb.Min.Add(bb.Max.Sub(bb.Min).Mul(vmath.V3(fx, fy, fz)))
	}
	if _, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
		Commands: []wire.Command{
			{Kind: wire.CmdSetSpeed, Value: 1},
			{Kind: wire.CmdSetPlaying, Flag: 1},
			{Kind: wire.CmdAddRake, P0: at(0.3, 0.3, 0.5), P1: at(0.3, 0.7, 0.5),
				NumSeeds: 32, Tool: uint8(integrate.ToolStreamline)},
			{Kind: wire.CmdAddRake, P0: at(0.5, 0.45, 0.6), P1: at(0.5, 0.65, 0.6),
				NumSeeds: 8, Tool: uint8(integrate.ToolStreakline)},
		},
	})); err != nil {
		b.Fatal(err)
	}
	empty := wire.EncodeClientUpdate(wire.ClientUpdate{})
	before, ok := srv.LiveStats()
	if !ok {
		b.Fatal("live server reports no ring stats")
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Call(wire.ProcFrame, empty); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	after, _ := srv.LiveStats()
	b.ReportMetric(float64(after.Produced-before.Produced)/float64(b.N), "produced/op")
}

// BenchmarkAblationIntegrators times one integration step per scheme.
func BenchmarkAblationIntegrators(b *testing.B) {
	u := benchDataset(b)
	sampler := integrate.SteadySampler{F: u.Steps[0], G: u.Grid}
	gc := vmath.V3(12, 16, 5)
	for _, m := range []integrate.Method{integrate.Euler, integrate.RK2, integrate.RK4} {
		b.Run(m.String(), func(b *testing.B) {
			p := gc
			for i := 0; i < b.N; i++ {
				p = integrate.Step(m, sampler, p, 0, 0.3)
				if !u.Grid.InBounds(p) {
					p = gc
				}
			}
		})
	}
}

// BenchmarkAblationGridCoords times one step with pre-converted grid
// velocities vs one step paying the physical-space point location the
// paper's §2.1 design avoids.
func BenchmarkAblationGridCoords(b *testing.B) {
	u := benchDataset(b)
	g := u.Grid
	fld := u.Steps[0]
	sampler := integrate.SteadySampler{F: fld, G: g}
	seed := vmath.V3(12, 8, 5)
	b.Run("grid-coords", func(b *testing.B) {
		p := seed
		for i := 0; i < b.N; i++ {
			p = integrate.Step(integrate.RK2, sampler, p, 0, 0.3)
			if !g.InBounds(p) {
				p = seed
			}
		}
	})
	b.Run("point-location", func(b *testing.B) {
		p := seed
		phys := g.PhysAt(p)
		for i := 0; i < b.N; i++ {
			gc, err := g.PhysToGrid(phys, p.Add(vmath.V3(0.3, 0.3, 0.3)))
			if err != nil {
				p = seed
				phys = g.PhysAt(p)
				continue
			}
			next := integrate.Step(integrate.RK2, sampler, gc, 0, 0.3)
			if !g.InBounds(next) {
				next = seed
			}
			p = next
			phys = g.PhysAt(next)
		}
	})
}

// BenchmarkAblationEncoding times encoding a 10,000-point frame at the
// chosen 12 bytes/point.
func BenchmarkAblationEncoding(b *testing.B) {
	pts := make([]vmath.Vec3, 10000)
	buf := make([]byte, 0, len(pts)*wire.PointBytes)
	b.SetBytes(int64(len(pts) * wire.PointBytes))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = wire.EncodePoints(buf[:0], pts)
	}
	_ = buf
}

// BenchmarkFrameEncodeV2 times the codec-v2 frame encoder at the two
// ends of the Wire 2.0 cost spectrum on a ~12,800-point scene:
// "keyframe" resets the session shadow each op so every rake is
// inlined and quantized, "steady" keeps the shadow warm so every rake
// collapses to a reference record. benchcheck pins both so a lost
// delta (steady frames silently re-inlining) or a quantizer slowdown
// fails the gate.
func BenchmarkFrameEncodeV2(b *testing.B) {
	q := wire.Quantizer{Min: vmath.V3(0, 0, 0), Max: vmath.V3(24, 32, 10)}
	const nRakes, nLines, nPts = 8, 16, 100
	reply := wire.FrameReply{
		Time:  wire.TimeStatus{Current: 3.5, Speed: 1, Playing: true, NumSteps: 10},
		Users: []wire.UserState{{ID: 1, Head: vmath.Identity(), Hand: vmath.V3(4, 5, 6)}},
		Round: 42,
	}
	seqs := make([]uint64, nRakes)
	segs := make([][]byte, nRakes)
	for r := 0; r < nRakes; r++ {
		reply.Rakes = append(reply.Rakes, wire.RakeState{
			ID: int32(r + 1),
			P0: vmath.V3(1, float32(r)+1, 1), P1: vmath.V3(1, float32(r)+1, 9),
			NumSeeds: nLines, Tool: uint8(integrate.ToolStreamline),
		})
		g := wire.Geometry{Rake: int32(r + 1), Tool: uint8(integrate.ToolStreamline)}
		for l := 0; l < nLines; l++ {
			line := make([]vmath.Vec3, nPts)
			for p := range line {
				t := float32(p) / nPts
				line[p] = vmath.V3(1+22*t, float32(r)+1+0.4*float32(l)*t, 1+8*t*t)
			}
			g.Lines = append(g.Lines, line)
		}
		reply.Geometry = append(reply.Geometry, g)
		seqs[r] = uint64(r + 1)
		// Pre-encoded segments model the server's encode-once cache.
		segs[r] = wire.AppendGeomV2(nil, g, q)
	}

	b.Run("keyframe", func(b *testing.B) {
		enc := wire.NewFrameEncoder(q)
		buf := enc.AppendFrame(nil, reply, seqs, segs, nil, nil)
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			enc.Reset()
			buf = enc.AppendFrame(buf[:0], reply, seqs, segs, nil, nil)
		}
		if enc.LastInline != nRakes {
			b.Fatalf("keyframe inlined %d of %d rakes", enc.LastInline, nRakes)
		}
	})

	b.Run("steady", func(b *testing.B) {
		enc := wire.NewFrameEncoder(q)
		buf := enc.AppendFrame(nil, reply, seqs, segs, nil, nil) // warm the shadow
		buf = enc.AppendFrame(buf[:0], reply, seqs, segs, nil, nil)
		b.SetBytes(int64(len(buf)))
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			buf = enc.AppendFrame(buf[:0], reply, seqs, segs, nil, nil)
		}
		if enc.LastRef != nRakes {
			b.Fatalf("steady frame referenced %d of %d rakes", enc.LastRef, nRakes)
		}
	})
}

// TestRootFigureGeneration exercises the figure writers once so the
// bench figures stay reproducible from `go test .` at the root.
func TestRootFigureGeneration(t *testing.T) {
	if testing.Short() {
		t.Skip("figure generation")
	}
	u, err := bench.BuildDataset(bench.DatasetSpec{NI: 16, NJ: 24, NK: 8, NumSteps: 6, DT: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if _, err := bench.Figure1(u, filepath.Join(dir, "f1.ppm")); err != nil {
		t.Fatal(err)
	}
	if _, err := bench.Figure2(u, filepath.Join(dir, "f2.ppm")); err != nil {
		t.Fatal(err)
	}
	if _, _, err := bench.Figure3(u, filepath.Join(dir, "f3.ppm")); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 3 {
		t.Errorf("figures written: %d, want 3", len(entries))
	}
}

// BenchmarkMultiblockStreamline measures block-hopping integration —
// the §7 future-work feature — against the single-block fast path.
func BenchmarkMultiblockStreamline(b *testing.B) {
	up, err := grid.NewCartesian(21, 17, 17, vmath.AABB{
		Min: vmath.V3(-20, -8, -8), Max: vmath.V3(0.5, 8, 8),
	})
	if err != nil {
		b.Fatal(err)
	}
	down, err := grid.NewCartesian(21, 17, 17, vmath.AABB{
		Min: vmath.V3(0, -8, -8), Max: vmath.V3(20, 8, 8),
	})
	if err != nil {
		b.Fatal(err)
	}
	m, err := grid.NewMultiblock(up, down)
	if err != nil {
		b.Fatal(err)
	}
	mk := func() *field.Field {
		f := field.NewField(21, 17, 17, field.GridCoords)
		for i := range f.U {
			f.U[i] = 0.5
			f.V[i] = 0.05
		}
		return f
	}
	mf, err := integrate.NewMultiField(m, []*field.Field{mk(), mk()})
	if err != nil {
		b.Fatal(err)
	}
	o := integrate.Options{Method: integrate.RK2, StepSize: 0.5, MaxSteps: 200, MinSpeed: 1e-9}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		path, err := integrate.MultiStreamline(mf, vmath.V3(-18, 0, 0), o)
		if err != nil {
			b.Fatal(err)
		}
		if len(path.Blocks) != 2 {
			b.Fatal("no block hop")
		}
	}
}

// BenchmarkIsosurfaceExtract measures the §1.2-excluded tool at the
// paper's grid scale — the cost that keeps it out of the interactive
// loop.
func BenchmarkIsosurfaceExtract(b *testing.B) {
	u, err := bench.BuildDataset(bench.DatasetSpec{NI: 64, NJ: 64, NK: 32, NumSteps: 1, DT: 0.6})
	if err != nil {
		b.Fatal(err)
	}
	speed := isosurf.SpeedField(u.Steps[0])
	var maxSpeed float32
	for _, s := range speed {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tris, err := isosurf.Extract(u.Grid, speed, 0.4*maxSpeed)
		if err != nil {
			b.Fatal(err)
		}
		if len(tris) == 0 {
			b.Fatal("no surface")
		}
	}
}

// BenchmarkIsoToolFrame measures the shared-tool frame pipeline: a
// session with the isosurface tool enabled exchanging frames. steady
// holds parameters fixed (tool memo hit, encode-only); relevel bumps
// the iso level every frame (full marching-cubes recompute priced by
// the governor path).
func BenchmarkIsoToolFrame(b *testing.B) {
	u := benchDataset(b)
	// The tool pipeline extracts on physical-velocity speed; derive the
	// level from the same field the server marches.
	phys, err := field.ToPhysicalVelocity(u.Steps[0], u.Grid)
	if err != nil {
		b.Fatal(err)
	}
	speed := isosurf.SpeedField(phys)
	var maxSpeed float32
	for _, s := range speed {
		if s > maxSpeed {
			maxSpeed = s
		}
	}
	level := 0.4 * maxSpeed
	setup := func(b *testing.B) *dlib.Client {
		b.Helper()
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			b.Fatal(err)
		}
		srv, err := core.Serve(ln, store.NewMemory(u), core.Options{})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { srv.Dlib().Close() })
		c, err := dlib.Dial(ln.Addr().String())
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { c.Close() })
		out, err := c.Call(wire.ProcFrame, wire.EncodeClientUpdate(wire.ClientUpdate{
			Commands: []wire.Command{{Kind: wire.CmdIsoSet, Flag: 1, Value: level}},
		}))
		if err != nil {
			b.Fatal(err)
		}
		r, err := wire.DecodeFrameReply(out)
		if err != nil {
			b.Fatal(err)
		}
		if r.Tools == nil || r.Tools.TotalPoints() == 0 {
			b.Fatalf("setup: no isosurface at level %v", level)
		}
		return c
	}

	b.Run("steady", func(b *testing.B) {
		c := setup(b)
		empty := wire.EncodeClientUpdate(wire.ClientUpdate{})
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(wire.ProcFrame, empty); err != nil {
				b.Fatal(err)
			}
		}
	})

	b.Run("relevel", func(b *testing.B) {
		c := setup(b)
		levels := [2][]byte{
			wire.EncodeClientUpdate(wire.ClientUpdate{
				Commands: []wire.Command{{Kind: wire.CmdIsoSet, Flag: 1, Value: level}},
			}),
			wire.EncodeClientUpdate(wire.ClientUpdate{
				Commands: []wire.Command{{Kind: wire.CmdIsoSet, Flag: 1, Value: level * 1.1}},
			}),
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := c.Call(wire.ProcFrame, levels[i%2]); err != nil {
				b.Fatal(err)
			}
		}
	})
}
